// Command smatch runs subgraph matching queries: it loads a query graph
// (or a directory of them) and a data graph in the text format (t/v/e
// records), executes the selected algorithm, and reports the embedding
// counts and the preprocessing/enumeration time split the paper
// measures.
//
// Usage:
//
//	smatch -q query.graph -d data.graph [-algo Optimized] [-limit 100000]
//	       [-timeout 5m] [-print 3] [-profile] [-parallel 4] [-workers 4]
//	       [-schedule steal] [-split cost] [-kernel adaptive] [-trace] [-explain]
//	smatch -q queries/ -d data.graph [-csv out.csv]   # batch mode
//	smatch -batch list.txt -d data.graph              # batched service mode:
//	       list.txt holds query-graph paths, one per line; the queries run
//	       as ONE service batch (grouped admission, one plan per distinct
//	       query, duplicates deduplicated) and a grouping summary follows
//	smatch -d data.graph -save data.snap              # write a checksummed
//	       binary snapshot; -d and -q accept snapshots everywhere
//	smatch -load data.snap [-o data.graph]            # verify a snapshot
//	       (full sha256 fingerprint) and optionally convert back to text
//	smatch -fsck /var/lib/smatchd                     # verify a smatchd
//	       data directory: manifest + WAL replay, every live snapshot's
//	       checksums and fingerprint, orphan detection; read-only
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	sm "subgraphmatching"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/store"
)

func main() {
	var (
		queryPath = flag.String("q", "", "query graph file (required)")
		dataPath  = flag.String("d", "", "data graph file (required)")
		algoName  = flag.String("algo", "Optimized", "algorithm: QSI GQL CFL CECI DPiso RI VF2PP Optimized GLW")
		limit     = flag.Uint64("limit", 100_000, "stop after this many embeddings (0 = all)")
		timeout   = flag.Duration("timeout", 5*time.Minute, "per-query time limit (0 = none)")
		printN    = flag.Int("print", 0, "print up to N embeddings")
		parallel  = flag.Int("parallel", 1, "enumeration worker goroutines")
		workers   = flag.Int("workers", 0, "preprocessing (filter + candidate-space) worker goroutines (0 = same as -parallel)")
		schedule  = flag.String("schedule", "steal", "parallel scheduler: steal (work stealing) or strided (static partition)")
		split     = flag.String("split", "cost", "work-steal task splitting: cost (cost-model recursive) or static (all depth-1 pairs)")
		kernel    = flag.String("kernel", "adaptive", "intersection-kernel policy: adaptive merge gallop hybrid block")
		profile   = flag.Bool("profile", false, "print a per-depth search profile")
		trace     = flag.Bool("trace", false, "print the phase-span trace (filter stages, build, order, per-worker enumeration)")
		explain   = flag.Bool("explain", false, "print the EXPLAIN/ANALYZE breakdown: filter-stage reduction, matching order, per-depth enumeration heat")
		hom       = flag.Bool("hom", false, "count homomorphisms instead of isomorphisms")
		sym       = flag.Bool("sym", false, "enable symmetry breaking (NEC orbit counting)")
		estimate  = flag.Bool("estimate", false, "print the spanning-tree cardinality estimate first")
		csvPath   = flag.String("csv", "", "batch mode: also write per-query results as CSV")
		batchList = flag.String("batch", "", "run the query files listed in this file (one path per line) as one service batch")
		savePath  = flag.String("save", "", "write the -d graph as a binary snapshot to this path and exit")
		loadPath  = flag.String("load", "", "verify a snapshot file (full fingerprint check) and print its shape")
		outPath   = flag.String("o", "", "with -load: also write the graph in the t/v/e text format to this path")
		fsckDir   = flag.String("fsck", "", "verify a smatchd data directory (read-only) and exit non-zero on corruption")
	)
	flag.Parse()
	if *fsckDir != "" {
		if err := runFsck(*fsckDir); err != nil {
			exitErr(err)
		}
		return
	}
	if *savePath != "" {
		if err := runSave(*dataPath, *savePath); err != nil {
			exitErr(err)
		}
		return
	}
	if *loadPath != "" {
		if err := runLoad(*loadPath, *outPath); err != nil {
			exitErr(err)
		}
		return
	}
	// Ctrl-C cancels the context; MatchContext stops the search
	// cooperatively and the process exits cleanly instead of being
	// killed mid-enumeration.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *batchList != "" {
		if err := runServiceBatch(ctx, *batchList, *dataPath, *algoName, *limit, *timeout, *parallel, *workers); err != nil {
			exitErr(err)
		}
		return
	}
	if info, err := os.Stat(*queryPath); err == nil && info.IsDir() {
		if err := runBatch(ctx, *queryPath, *dataPath, *algoName, *limit, *timeout, *csvPath); err != nil {
			exitErr(err)
		}
		return
	}
	if err := run(ctx, *queryPath, *dataPath, *algoName, *limit, *timeout, *printN, *parallel, *workers, *schedule,
		*split, *kernel, *profile, *trace, *explain, *hom, *sym, *estimate); err != nil {
		exitErr(err)
	}
}

// runSave converts a graph file (text or snapshot) into the checksummed
// binary snapshot format.
func runSave(dataPath, savePath string) error {
	if dataPath == "" {
		return fmt.Errorf("-save needs -d")
	}
	g, err := sm.LoadGraph(dataPath)
	if err != nil {
		return err
	}
	fp, size, err := store.WriteSnapshotFile(savePath, g)
	if err != nil {
		return err
	}
	fmt.Printf("saved %v to %s (%d bytes, fp %s)\n", g, savePath, size, hex.EncodeToString(fp[:8]))
	return nil
}

// runLoad opens a snapshot with the full fingerprint check and
// optionally converts it back to the text format — the inverse of
// -save, closing the round-trip.
func runLoad(loadPath, outPath string) error {
	snap, err := store.OpenSnapshot(loadPath, store.LoadOptions{VerifyFingerprint: true})
	if err != nil {
		return err
	}
	fmt.Printf("snapshot %s: %v (%d bytes, fp %s, verified)\n",
		loadPath, snap.Graph, snap.Size, hex.EncodeToString(snap.Fingerprint[:8]))
	if outPath != "" {
		if err := sm.SaveGraph(outPath, snap.Graph); err != nil {
			return err
		}
		fmt.Printf("text format written to %s\n", outPath)
	}
	return nil
}

// runFsck verifies a smatchd data directory without modifying it.
func runFsck(dir string) error {
	rep, err := store.Fsck(dir)
	if err != nil {
		return err
	}
	rep.WriteReport(os.Stdout)
	if rep.Errors > 0 {
		os.Exit(1)
	}
	return nil
}

func exitErr(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "smatch: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "smatch:", err)
	os.Exit(1)
}

func run(ctx context.Context, queryPath, dataPath, algoName string, limit uint64, timeout time.Duration, printN, parallel, workers int,
	scheduleName, splitName, kernelName string, profile, trace, explain, hom, sym, estimate bool) error {
	if queryPath == "" || dataPath == "" {
		return fmt.Errorf("both -q and -d are required")
	}
	algo, err := sm.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	sched, err := sm.ParseSchedule(scheduleName)
	if err != nil {
		return err
	}
	splitPol, err := sm.ParseSplitPolicy(splitName)
	if err != nil {
		return err
	}
	kern, err := sm.ParseKernelPolicy(kernelName)
	if err != nil {
		return err
	}
	q, err := sm.LoadGraph(queryPath)
	if err != nil {
		return err
	}
	g, err := sm.LoadGraph(dataPath)
	if err != nil {
		return err
	}
	fmt.Printf("query: %v\ndata:  %v\nalgo:  %v\n", q, g, algo)

	if estimate {
		est, err := sm.EstimateEmbeddings(q, g)
		if err != nil {
			return err
		}
		fmt.Printf("estimate:      %.0f (spanning-tree upper bound)\n", est)
	}

	printed := 0
	opts := sm.Options{Algorithm: algo, MaxEmbeddings: limit, TimeLimit: timeout,
		Parallel: parallel, Workers: workers, Schedule: sched, Split: splitPol,
		Trace: trace, Explain: explain}
	if profile || hom || sym || kern != sm.KernelAdaptive {
		cfg := sm.PresetConfig(algo, q, g)
		cfg.Profile = profile
		cfg.Homomorphism = hom
		cfg.SymmetryBreaking = sym
		cfg.Kernel = kern
		if hom {
			// Homomorphism mode needs the pipeline engine, not the
			// external solvers, and ignores structural filters.
			cfg.UseGlasgow, cfg.UseVF2, cfg.UseUllmann = false, false, false
			if cfg.Local == sm.LocalDirect && cfg.VF2PPRules {
				cfg.VF2PPRules = false
			}
		}
		opts.Custom = &cfg
	}
	if printN > 0 {
		opts.OnMatch = func(m []sm.Vertex) bool {
			if printed < printN {
				fmt.Printf("match %d: %v\n", printed+1, m)
				printed++
			}
			return true
		}
	}
	res, err := sm.MatchContext(ctx, q, g, opts)
	if err != nil {
		return err
	}
	fmt.Printf("embeddings:    %d", res.Embeddings)
	if res.LimitHit {
		fmt.Printf(" (limit reached)")
	}
	fmt.Println()
	fmt.Printf("search nodes:  %d\n", res.Nodes)
	if s := res.Split; s != nil {
		fmt.Printf("split:         policy=%s tasks=%d refined=%d probes=%d", s.Policy, s.Tasks, s.SplitTasks, s.Probes)
		if s.PredictedNodes > 0 {
			fmt.Printf(" predicted-nodes=%d", s.PredictedNodes)
		}
		fmt.Println()
	}
	fmt.Printf("preprocessing: %v (filter %v, build %v, order %v)\n",
		res.PreprocessTime(), res.FilterTime, res.BuildTime, res.OrderTime)
	fmt.Printf("enumeration:   %v\n", res.EnumTime)
	fmt.Printf("candidates:    %.1f per query vertex\n", res.MeanCandidates)
	if res.Kernels.Total() != 0 {
		fmt.Printf("kernel mix:   ")
		for i, n := range res.Kernels {
			if n != 0 {
				fmt.Printf(" %s=%d", intersect.Kernel(i), n)
			}
		}
		fmt.Println()
	}
	fmt.Printf("memory:        %d bytes\n", res.MemoryBytes)
	if res.TimedOut {
		fmt.Println("status:        UNSOLVED (time limit)")
	} else {
		fmt.Println("status:        solved")
	}
	if res.Explain != nil {
		fmt.Println("\nexplain:")
		res.Explain.Render(os.Stdout)
	}
	if profile && res.Profile != nil {
		fmt.Println("\nsearch profile:")
		res.Profile.Render(os.Stdout)
		fmt.Println(res.Profile.BranchingSummary())
	}
	if trace && res.Trace != nil {
		fmt.Println("\ntrace:")
		res.Trace.Render(os.Stdout)
	}
	return nil
}

// runBatch executes every query in a directory and prints the paper's
// aggregate metrics, optionally dumping per-query rows as CSV.
func runBatch(ctx context.Context, queryDir, dataPath, algoName string, limit uint64, timeout time.Duration, csvPath string) error {
	if dataPath == "" {
		return fmt.Errorf("-d is required")
	}
	algo, err := sm.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	queries, err := sm.LoadQueryDir(queryDir)
	if err != nil {
		return err
	}
	g, err := sm.LoadGraph(dataPath)
	if err != nil {
		return err
	}
	fmt.Printf("data:    %v\nalgo:    %v\nqueries: %d from %s\n\n", g, algo, len(queries), queryDir)

	var totalEmb uint64
	var totalPre, totalEnum time.Duration
	unsolved := 0
	var results []*sm.Result
	errored := 0
	for i, q := range queries {
		res, err := sm.MatchContext(ctx, q, g, sm.Options{Algorithm: algo, MaxEmbeddings: limit, TimeLimit: timeout})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return err
			}
			// A malformed query (e.g. disconnected) fails alone, not the
			// batch.
			fmt.Printf("  query %3d: error: %v\n", i, err)
			errored++
			results = append(results, nil)
			continue
		}
		results = append(results, res)
		status := "solved"
		if res.TimedOut {
			status = "UNSOLVED"
			unsolved++
		}
		fmt.Printf("  query %3d: %9d embeddings  %12v preprocess  %12v enumerate  [%s]\n",
			i, res.Embeddings, res.PreprocessTime().Round(time.Microsecond),
			res.EnumTime.Round(time.Microsecond), status)
		totalEmb += res.Embeddings
		totalPre += res.PreprocessTime()
		totalEnum += res.EnumTime
	}
	if n := time.Duration(len(queries) - errored); n > 0 {
		fmt.Printf("\ntotal embeddings: %d\nmean preprocess:  %v\nmean enumerate:   %v\nunsolved:         %d/%d  errors: %d\n",
			totalEmb, (totalPre / n).Round(time.Microsecond), (totalEnum / n).Round(time.Microsecond),
			unsolved, len(queries), errored)
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintln(f, "query,embeddings,nodes,preprocess_ms,enum_ms,timed_out")
		for i, r := range results {
			if r == nil {
				continue
			}
			fmt.Fprintf(f, "%d,%d,%d,%.3f,%.3f,%t\n", i, r.Embeddings, r.Nodes,
				float64(r.PreprocessTime())/float64(time.Millisecond),
				float64(r.EnumTime)/float64(time.Millisecond), r.TimedOut)
		}
		fmt.Printf("per-query CSV written to %s\n", csvPath)
	}
	return nil
}
