package experiments

import (
	"fmt"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/workload"
)

// Ablation sweeps the design choices DESIGN.md calls out, beyond the
// paper's own figures: GraphQL's refinement rounds and profile radius,
// symmetry breaking, and parallel enumeration speedup.
func Ablation(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Ablations: refinement rounds, profile radius, symmetry, parallelism", "DESIGN.md section 5")
	const ds = "yt"
	g, err := dataGraph(ds)
	if err != nil {
		return err
	}
	dense, sparse, err := defaultSets(env, ds)
	if err != nil {
		return err
	}
	set := dense
	if set == nil {
		set = sparse
	}

	// (a) GraphQL refinement rounds: pruning power vs filter time.
	ta := workload.Table{
		Title:  fmt.Sprintf("(a) GraphQL global-refinement rounds on %s/%s", ds, set.Name),
		Header: []string{"rounds", "mean |C(u)|", "filter ms"},
	}
	for _, rounds := range []int{1, 2, 4, 8} {
		var sumCand float64
		var sumTime time.Duration
		for _, q := range set.Queries {
			t0 := time.Now()
			cand := filter.RunGraphQL(q, g, rounds)
			sumTime += time.Since(t0)
			sumCand += filter.MeanCandidates(cand)
		}
		n := float64(len(set.Queries))
		ta.AddRow(fmt.Sprintf("%d", rounds),
			workload.FmtCount(sumCand/n), workload.FmtMS(sumTime/time.Duration(len(set.Queries))))
	}
	env.render(&ta)

	// (b) Profile radius of the local pruning.
	tb := workload.Table{
		Title:  fmt.Sprintf("(b) GraphQL profile radius on %s/%s", ds, set.Name),
		Header: []string{"radius", "mean |C(u)|", "filter ms"},
	}
	for _, radius := range []int{1, 2, 3} {
		var sumCand float64
		var sumTime time.Duration
		for _, q := range set.Queries {
			t0 := time.Now()
			cand := filter.RunGraphQLRadius(q, g, filter.DefaultGQLRounds, radius)
			sumTime += time.Since(t0)
			sumCand += filter.MeanCandidates(cand)
		}
		n := float64(len(set.Queries))
		tb.AddRow(fmt.Sprintf("%d", radius),
			workload.FmtCount(sumCand/n), workload.FmtMS(sumTime/time.Duration(len(set.Queries))))
	}
	env.render(&tb)

	// (c) Symmetry breaking: search nodes with and without.
	tc := workload.Table{
		Title:  fmt.Sprintf("(c) symmetry breaking on %s/%s", ds, set.Name),
		Header: []string{"mode", "mean nodes", "mean enum ms"},
	}
	for _, sym := range []bool{false, true} {
		cfg := core.Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect, SymmetryBreaking: sym}
		agg := workload.Run("", set.Queries, g,
			func(*graph.Graph) core.Config { return cfg }, env.Limits())
		name := "baseline"
		if sym {
			name = "symmetry-broken"
		}
		var nodes float64
		for _, q := range set.Queries {
			res, err := core.Match(q, g, cfg, env.Limits())
			if err == nil {
				nodes += float64(res.Nodes)
			}
		}
		tc.AddRow(name, workload.FmtCount(nodes/float64(len(set.Queries))), workload.FmtMS(agg.MeanEnum))
	}
	env.render(&tc)

	// (d) Historical baselines: Ullmann -> VF2 -> VF2++ on small dense
	// queries (the lineage claim of the paper's introduction).
	qs, err := querySets(env, ds)
	if err != nil {
		return err
	}
	if small := setBySize(qs, "Q8D"); small != nil {
		tbl := workload.Table{
			Title:  fmt.Sprintf("(d) baseline lineage on %s/Q8D", ds),
			Header: []string{"algorithm", "mean total ms", "unsolved"},
		}
		for _, a := range []core.Algorithm{core.Ullmann, core.VF2Classic, core.VF2PP} {
			agg := workload.Run(a.String(), small.Queries, g,
				func(q *graph.Graph) core.Config { return core.PresetConfig(a, q, g) }, env.Limits())
			tbl.AddRow(a.String(), workload.FmtMS(agg.MeanTotal), fmt.Sprintf("%d", agg.Unsolved))
		}
		env.render(&tbl)
	}

	// (e) Parallel enumeration speedup on the whole default set.
	td := workload.Table{
		Title:  fmt.Sprintf("(e) parallel enumeration on %s/%s", ds, set.Name),
		Header: []string{"workers", "wall ms (set)", "speedup"},
	}
	cfg := core.OrderingStudyConfig(order.GQL, true)
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		limits := env.Limits()
		limits.Parallel = workers
		t0 := time.Now()
		for _, q := range set.Queries {
			if _, err := core.Match(q, g, cfg, limits); err != nil {
				return err
			}
		}
		wall := time.Since(t0)
		if workers == 1 {
			base = wall
		}
		td.AddRow(fmt.Sprintf("%d", workers), workload.FmtMS(wall),
			workload.FmtSpeedup(float64(base)/float64(wall)))
	}
	env.render(&td)
	return nil
}
