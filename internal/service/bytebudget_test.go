package service

import (
	"context"
	"math/rand"
	"testing"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/testutil"
)

// sizedPlan fabricates a plan whose SizeBytes is dominated by a
// candidate slice of n vertices (planBaseBytes + 4n + 24). The byte
// budget is exercised with exact, synthetic sizes; the service-level
// test below uses real preprocessed plans.
func sizedPlan(n int) *core.Plan {
	return &core.Plan{Cand: [][]uint32{make([]uint32, n)}}
}

// TestPlanCacheByteBudgetNeverExceeded is the core byte-budget
// property: under arbitrary insert churn with wildly uneven plan
// sizes, the resident byte total never exceeds the budget after any
// insert, and the reconciliation invariant holds throughout —
// every successful insert is resident, evicted, or purged, exactly
// once.
func TestPlanCacheByteBudgetNeverExceeded(t *testing.T) {
	const budget = 100_000
	c := newPlanCache(0, budget) // bytes-only bound: entries unbounded
	rng := rand.New(rand.NewSource(99))
	inserts := uint64(0)
	for i := 0; i < 500; i++ {
		// Sizes from trivial to budget-busting (the *4 makes some plans
		// alone exceed the whole budget).
		n := rng.Intn(budget / 4 * 3)
		c.add(testKey("g", 1, uint64(i)), sizedPlan(n))
		inserts++
		st := c.stats()
		if st.SizeBytes > budget {
			t.Fatalf("after insert %d: resident %d bytes > budget %d", i, st.SizeBytes, budget)
		}
		if st.SizeBytes < 0 {
			t.Fatalf("after insert %d: negative resident bytes %d", i, st.SizeBytes)
		}
		if got := uint64(st.Size) + st.Evictions + st.Purged; got != inserts {
			t.Fatalf("after insert %d: size %d + evictions %d + purged %d = %d, want %d inserts",
				i, st.Size, st.Evictions, st.Purged, got, inserts)
		}
	}
	if c.stats().Evictions == 0 {
		t.Fatal("churn at 500 inserts over a 100KB budget must have evicted")
	}
}

// TestPlanCacheOversizedPlanAdmittedThenEvicted: a single plan larger
// than the whole budget must not wedge the cache — the insert returns
// the plan to its builder, the eviction loop drains it right back out,
// and subsequent normal inserts behave.
func TestPlanCacheOversizedPlanAdmittedThenEvicted(t *testing.T) {
	c := newPlanCache(0, 1024)
	huge := sizedPlan(1 << 20)
	k := testKey("g", 1, 1)
	if got := c.add(k, huge); got != huge {
		t.Fatal("the insert must still hand the oversized plan back to its builder")
	}
	st := c.stats()
	if st.Size != 0 || st.SizeBytes != 0 {
		t.Fatalf("oversized plan retained: size %d, %d bytes", st.Size, st.SizeBytes)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (the oversized plan's own insert)", st.Evictions)
	}
	// The cache is not wedged: a fitting plan inserts and is retained.
	small := sizedPlan(10)
	c.add(testKey("g", 1, 2), small)
	if got, ok := c.get(testKey("g", 1, 2)); !ok || got != small {
		t.Fatal("cache wedged after the oversized insert")
	}
	if st := c.stats(); st.SizeBytes != small.SizeBytes() {
		t.Fatalf("resident %d bytes, want exactly the small plan's %d", st.SizeBytes, small.SizeBytes())
	}
}

// TestPlanCacheByteReconciliationUnderPurgeChurn mixes byte-pressure
// eviction with generation purges and checks the bytes and the
// three-way accounting stay exact.
func TestPlanCacheByteReconciliationUnderPurgeChurn(t *testing.T) {
	const budget = 50_000
	c := newPlanCache(0, budget)
	rng := rand.New(rand.NewSource(7))
	inserts := uint64(0)
	gen := uint64(1)
	for round := 0; round < 40; round++ {
		for i := 0; i < 10; i++ {
			c.add(planKey{graph: "g", gen: gen, cfgHash: uint64(round*100 + i)},
				sizedPlan(rng.Intn(budget/2)))
			inserts++
		}
		if round%5 == 4 {
			// Hot swap: purge everything below the new generation.
			gen++
			c.purgeGraph("g", gen)
		}
		st := c.stats()
		if st.SizeBytes > budget {
			t.Fatalf("round %d: resident %d > budget %d", round, st.SizeBytes, budget)
		}
		if got := uint64(st.Size) + st.Evictions + st.Purged; got != inserts {
			t.Fatalf("round %d: size %d + evictions %d + purged %d != %d inserts",
				round, st.Size, st.Evictions, st.Purged, inserts)
		}
	}
	// Final purge drains to zero bytes exactly.
	c.purgeGraph("g", gen+1)
	if st := c.stats(); st.Size != 0 || st.SizeBytes != 0 {
		t.Fatalf("after full purge: size %d, %d bytes", st.Size, st.SizeBytes)
	}
}

// TestServiceByteBudgetEvicts drives the budget end to end: a service
// configured with a small PlanCacheBytes serving many distinct queries
// must keep CacheStats.SizeBytes within budget, report evictions, and
// agree with the smatch_plan_cache_bytes gauge.
func TestServiceByteBudgetEvicts(t *testing.T) {
	s, g := newTestService(t, Config{PlanCacheBytes: 16 << 10})
	rng := rand.New(rand.NewSource(13))
	ctx := context.Background()
	for i := 0; i < 24; i++ {
		q := testutil.RandomConnectedQuery(rng, g, 4+i%3)
		if _, err := s.Submit(ctx, Request{Graph: "main", Query: q, Algorithm: core.GraphQL}); err != nil {
			t.Fatal(err)
		}
		st := s.Stats().Cache
		if st.SizeBytes > st.BudgetBytes {
			t.Fatalf("query %d: resident %d > budget %d", i, st.SizeBytes, st.BudgetBytes)
		}
	}
	st := s.Stats().Cache
	if st.BudgetBytes != 16<<10 {
		t.Fatalf("budget = %d, want %d", st.BudgetBytes, 16<<10)
	}
	if st.Evictions == 0 {
		t.Fatalf("24 distinct GraphQL plans in a 16KB budget must evict (resident %d bytes over %d plans)",
			st.SizeBytes, st.Size)
	}
	if got := s.cache.sizeBytes(); got != st.SizeBytes {
		t.Fatalf("gauge reads %d, stats say %d", got, st.SizeBytes)
	}
	if got := uint64(st.Size) + st.Evictions + st.Purged; got != s.metrics.planBuilds.Value() {
		t.Fatalf("size %d + evictions %d + purged %d != %d plan builds",
			st.Size, st.Evictions, st.Purged, s.metrics.planBuilds.Value())
	}
}

// TestPlanSizeBytesOrdering sanity-checks the sizing the budget charges
// by: a real preprocessed plan reports a positive size that grows with
// the candidate space, and an empty plan costs only the base.
func TestPlanSizeBytesOrdering(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(3)), 500, 2000, 3)
	small := testutil.RandomConnectedQuery(rand.New(rand.NewSource(4)), g, 3)
	large := testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 8)
	ps, err := core.Preprocess(small, g, core.PresetConfig(core.CFL, small, g), 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.Preprocess(large, g, core.PresetConfig(core.CFL, large, g), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ps.SizeBytes() <= 0 || pl.SizeBytes() <= 0 {
		t.Fatalf("plan sizes must be positive: %d, %d", ps.SizeBytes(), pl.SizeBytes())
	}
	if pl.SizeBytes() <= ps.SizeBytes() {
		t.Fatalf("8-vertex plan (%d bytes) should outweigh 3-vertex plan (%d bytes)",
			pl.SizeBytes(), ps.SizeBytes())
	}
	if got := (&core.Plan{}).SizeBytes(); got <= 0 {
		t.Fatalf("empty plan size = %d, want the positive base charge", got)
	}
}
