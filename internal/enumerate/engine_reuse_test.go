package enumerate

import (
	"math/rand"
	"testing"

	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

// reuseOptionSets covers every recursion variant the reusable engine
// dispatches to.
func reuseOptionSets() []Options {
	return []Options{
		{Local: Direct},
		{Local: Intersect},
		{Local: Intersect, FailingSets: true},
		{Local: IntersectBlock},
		{Local: Intersect, Adaptive: true},
		{Local: Intersect, Adaptive: true, FailingSets: true},
	}
}

func TestEngineRepeatedRunsAreIdentical(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	f := newFixture(t, q, g, filter.GQL)
	for _, opts := range reuseOptionSets() {
		e, err := NewEngine(f.q, f.g, f.cand, f.space, f.phi, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		ref := f.run(t, opts)
		for i := 0; i < 3; i++ {
			st := e.Run()
			if st.Embeddings != ref.Embeddings || st.Nodes != ref.Nodes {
				t.Errorf("opts %+v run %d: (%d emb, %d nodes), want (%d, %d)",
					opts, i, st.Embeddings, st.Nodes, ref.Embeddings, ref.Nodes)
			}
		}
	}
}

func TestEngineRunRootPartitionsTheSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		g := testutil.RandomGraph(rng, 24+rng.Intn(16), 70+rng.Intn(50), 2)
		q := testutil.RandomConnectedQuery(rng, g, 4+rng.Intn(3))
		if q == nil {
			continue
		}
		cand, err := filter.Run(filter.GQL, q, g)
		if err != nil || filter.AnyEmpty(cand) {
			continue
		}
		f := newFixture(t, q, g, filter.GQL)
		for _, opts := range reuseOptionSets() {
			ref := f.run(t, opts)
			e, err := NewEngine(f.q, f.g, f.cand, f.space, f.phi, opts)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			for _, v := range f.cand[f.phi[0]] {
				if !e.RunRoot(v) {
					t.Fatalf("RunRoot(%d) stopped unexpectedly", v)
				}
			}
			if got := e.Stats().Embeddings; got != ref.Embeddings {
				t.Errorf("trial %d opts %+v: RunRoot partition found %d embeddings, full run %d",
					trial, opts, got, ref.Embeddings)
			}
		}
	}
}

func TestEngineRootPairPartitionsTheSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		g := testutil.RandomGraph(rng, 24+rng.Intn(16), 70+rng.Intn(50), 2)
		q := testutil.RandomConnectedQuery(rng, g, 4+rng.Intn(3))
		if q == nil {
			continue
		}
		cand, err := filter.Run(filter.GQL, q, g)
		if err != nil || filter.AnyEmpty(cand) {
			continue
		}
		f := newFixture(t, q, g, filter.GQL)
		for _, opts := range []Options{
			{Local: Direct},
			{Local: Intersect},
			{Local: Intersect, FailingSets: true},
		} {
			ref := f.run(t, opts)
			e, err := NewEngine(f.q, f.g, f.cand, f.space, f.phi, opts)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			var buf []uint32
			for _, v := range f.cand[f.phi[0]] {
				buf = e.ExpandRoot(v, buf[:0])
				for _, w := range buf {
					if !e.RunRootPair(v, w) {
						t.Fatalf("RunRootPair(%d,%d) stopped unexpectedly", v, w)
					}
				}
			}
			if got := e.Stats().Embeddings; got != ref.Embeddings {
				t.Errorf("trial %d opts %+v: pair partition found %d embeddings, full run %d",
					trial, opts, got, ref.Embeddings)
			}
		}
	}
}

// TestEngineRunRootAccumulatesAcrossTasks pins the scheduler contract:
// per-task entry points accumulate into Stats until ResetStats.
func TestEngineRunRootAccumulatesAcrossTasks(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	f := newFixture(t, q, g, filter.GQL)
	e, err := NewEngine(f.q, f.g, f.cand, f.space, f.phi, Options{Local: Intersect})
	if err != nil {
		t.Fatal(err)
	}
	roots := f.cand[f.phi[0]]
	for _, v := range roots {
		e.RunRoot(v)
	}
	firstNodes := e.Stats().Nodes
	if firstNodes == 0 {
		t.Fatal("no nodes accounted")
	}
	for _, v := range roots {
		e.RunRoot(v)
	}
	if got := e.Stats().Nodes; got != 2*firstNodes {
		t.Errorf("accumulated nodes = %d, want %d", got, 2*firstNodes)
	}
	e.ResetStats()
	if got := e.Stats().Nodes; got != 0 {
		t.Errorf("nodes after ResetStats = %d", got)
	}
}

// TestEngineSteadyStateAllocationFree is the zero-alloc contract behind
// the engine-reuse API: once buffers are warm, a full enumeration run
// performs no heap allocations.
func TestEngineSteadyStateAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := testutil.RandomGraph(rng, 60, 240, 2)
	var q *graph.Graph
	for q == nil {
		q = testutil.RandomConnectedQuery(rng, g, 5)
	}
	f := newFixture(t, q, g, filter.GQL)
	for _, opts := range []Options{
		{Local: Direct},
		{Local: Intersect},
		{Local: Intersect, FailingSets: true},
	} {
		e, err := NewEngine(f.q, f.g, f.cand, f.space, f.phi, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			e.Run() // warm the per-depth buffers
		}
		if allocs := testing.AllocsPerRun(20, func() { e.Run() }); allocs > 0 {
			t.Errorf("opts %+v: %.1f allocs per warmed run, want 0", opts, allocs)
		}
	}
}

// TestProfileOffAllocationFree is the profiling cost budget: with
// Options.Profile off, every recursion variant — including the adaptive
// order and the failing-set paths, whose hot loops carry the profile
// hooks behind a nil check — stays allocation-free once warm. The hooks
// must cost nothing when nobody asked for a profile.
func TestProfileOffAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := testutil.RandomGraph(rng, 60, 240, 2)
	var q *graph.Graph
	for q == nil {
		q = testutil.RandomConnectedQuery(rng, g, 5)
	}
	f := newFixture(t, q, g, filter.GQL)
	for _, opts := range reuseOptionSets() {
		e, err := NewEngine(f.q, f.g, f.cand, f.space, f.phi, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			e.Run()
		}
		if allocs := testing.AllocsPerRun(20, func() { e.Run() }); allocs > 0 {
			t.Errorf("opts %+v: %.1f allocs per warmed run with Profile off, want 0", opts, allocs)
		}
	}
	// Profiled engines reuse their counter slices too: after the
	// one-time profile allocation, repeated runs reset in place.
	for _, opts := range reuseOptionSets() {
		opts.Profile = true
		e, err := NewEngine(f.q, f.g, f.cand, f.space, f.phi, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			e.Run()
		}
		if allocs := testing.AllocsPerRun(20, func() { e.Run() }); allocs > 0 {
			t.Errorf("opts %+v: %.1f allocs per warmed profiled run, want 0", opts, allocs)
		}
	}
}
