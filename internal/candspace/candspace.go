// Package candspace implements the auxiliary data structure 𝒜 of the
// paper: for candidate vertex sets C(u), it maintains the edges between
// candidates of adjacent query vertices, so that
//
//	𝒜[u->u'](v) = N(v) ∩ C(u')
//
// can be retrieved in O(1) during enumeration. Two variants exist,
// distinguished by which query edges are materialized:
//
//   - Full: every edge of E(q), as in CECI's compact embedding cluster
//     index and DP-iso's candidate space. Enables the set-intersection
//     local candidate computation (paper Algorithm 5).
//   - Tree: only the spanning-tree edges, as in CFL's compressed path
//     index. Non-tree edges are verified with binary searches during
//     enumeration (paper Algorithm 4).
package candspace

import (
	"sort"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/par"
)

// Space is the auxiliary structure 𝒜 over a query graph and candidate
// sets. It is immutable after Build.
type Space struct {
	q          *graph.Graph
	candidates [][]uint32 // per query vertex, sorted data vertices

	// For each directed adjacent pair (u, i) where i indexes u's
	// neighbor list, a CSR mapping candidate index of u to the sorted
	// data vertices of C(neighbor) adjacent to it. nil when the pair is
	// not materialized (tree variant).
	edges [][]*edgeCSR

	// flat mirrors edges with one flat QFilter-style block arena per
	// directed query edge (per-candidate layouts are offset windows into
	// it); nil until MaterializeBlocks runs.
	flat [][]*intersect.FlatBlocks
}

type edgeCSR struct {
	offsets []int32
	targets []uint32
}

// BuildFull materializes 𝒜 for every query edge (CECI/DP-iso style).
// candidates[u] must be sorted; the slice is retained.
func BuildFull(q *graph.Graph, g *graph.Graph, candidates [][]uint32) *Space {
	return build(q, g, candidates, nil)
}

// BuildTree materializes 𝒜 only for the spanning-tree edges given by
// parent (CFL style): pairs (parent[u], u) and (u, parent[u]).
func BuildTree(q *graph.Graph, g *graph.Graph, candidates [][]uint32, parent []graph.Vertex) *Space {
	return build(q, g, candidates, parent)
}

// BuildFullParallel is BuildFull across `workers` goroutines. Every
// (u, u′) directed query-edge adjacency list is independent of the
// others, so the CSRs are built concurrently — in candidate-range
// chunks, stitched back in order — and the result is byte-identical to
// the sequential build for every worker count.
func BuildFullParallel(q, g *graph.Graph, candidates [][]uint32, workers int) *Space {
	s, _ := BuildFullParallelStats(q, g, candidates, workers)
	return s
}

// BuildFullParallelStats is BuildFullParallel returning also the
// per-worker work tallies (candidates processed plus targets emitted),
// the input to par.MakespanBound.
func BuildFullParallelStats(q, g *graph.Graph, candidates [][]uint32, workers int) (*Space, []uint64) {
	return buildParallel(q, g, candidates, nil, workers)
}

// BuildTreeParallel is BuildTree across `workers` goroutines.
func BuildTreeParallel(q, g *graph.Graph, candidates [][]uint32, parent []graph.Vertex, workers int) *Space {
	s, _ := buildParallel(q, g, candidates, parent, workers)
	return s
}

func build(q, g *graph.Graph, candidates [][]uint32, parent []graph.Vertex) *Space {
	s := &Space{
		q:          q,
		candidates: candidates,
		edges:      make([][]*edgeCSR, q.NumVertices()),
	}
	var scratch []uint32
	for u := 0; u < q.NumVertices(); u++ {
		ns := q.Neighbors(graph.Vertex(u))
		s.edges[u] = make([]*edgeCSR, len(ns))
		for i, up := range ns {
			if parent != nil && parent[u] != up && parent[up] != graph.Vertex(u) {
				continue // tree variant: skip non-tree edges
			}
			csr := &edgeCSR{offsets: make([]int32, len(candidates[u])+1)}
			for ci, v := range candidates[u] {
				scratch = intersect.Hybrid(scratch[:0], g.Neighbors(v), candidates[up])
				csr.targets = append(csr.targets, scratch...)
				csr.offsets[ci+1] = int32(len(csr.targets))
			}
			s.edges[u][i] = csr
		}
	}
	return s
}

// buildChunk is the number of candidates of u one build task
// intersects. Chunking below the per-edge grain matters under label
// skew, where a single (u, u′) pair over a hub label's candidates can
// hold most of the total intersection work. 64 is finer than the
// filter chunks because per-candidate cost varies more here (a hub's
// adjacency list can be orders of magnitude longer than a leaf's): on
// the skewed R-MAT benchmark fixture the 4-worker makespan bound rises
// from 2.2 at chunk 512 to 3.7 at 64 with no measurable task overhead.
const buildChunk = 64

// buildTask covers candidates[lo:hi] of the pair list entry pair.
type buildTask struct {
	pair   int
	lo, hi int
}

// pairJob is one materialized directed query edge (u, u′).
type pairJob struct {
	u   graph.Vertex
	pos int // index of u′ in u's neighbor list
	up  graph.Vertex
}

func buildParallel(q, g *graph.Graph, candidates [][]uint32, parent []graph.Vertex, workers int) (*Space, []uint64) {
	if workers <= 1 {
		return build(q, g, candidates, parent), nil
	}
	s := &Space{
		q:          q,
		candidates: candidates,
		edges:      make([][]*edgeCSR, q.NumVertices()),
	}
	var pairs []pairJob
	var tasks []buildTask
	for u := 0; u < q.NumVertices(); u++ {
		ns := q.Neighbors(graph.Vertex(u))
		s.edges[u] = make([]*edgeCSR, len(ns))
		for i, up := range ns {
			if parent != nil && parent[u] != up && parent[up] != graph.Vertex(u) {
				continue
			}
			pair := len(pairs)
			pairs = append(pairs, pairJob{u: graph.Vertex(u), pos: i, up: up})
			n := len(candidates[u])
			if n == 0 {
				tasks = append(tasks, buildTask{pair: pair, lo: 0, hi: 0})
				continue
			}
			for lo := 0; lo < n; lo += buildChunk {
				hi := lo + buildChunk
				if hi > n {
					hi = n
				}
				tasks = append(tasks, buildTask{pair: pair, lo: lo, hi: hi})
			}
		}
	}
	// Per-task partial CSRs: the chunk's concatenated targets plus the
	// per-candidate lengths, stitched into offsets afterwards.
	targets := make([][]uint32, len(tasks))
	lens := make([][]int32, len(tasks))
	work := par.Run(workers, len(tasks), func(w, t int) uint64 {
		task := tasks[t]
		p := pairs[task.pair]
		chunk := candidates[p.u][task.lo:task.hi]
		var out []uint32
		ls := make([]int32, len(chunk))
		for k, v := range chunk {
			before := len(out)
			out = intersect.Hybrid(out, g.Neighbors(v), candidates[p.up])
			ls[k] = int32(len(out) - before)
		}
		targets[t], lens[t] = out, ls
		return uint64(len(chunk) + len(out))
	})
	// Stitch: tasks of one pair are contiguous and in candidate order.
	for t := 0; t < len(tasks); {
		pair := tasks[t].pair
		p := pairs[pair]
		csr := &edgeCSR{offsets: make([]int32, len(candidates[p.u])+1)}
		ci := 0
		for ; t < len(tasks) && tasks[t].pair == pair; t++ {
			csr.targets = append(csr.targets, targets[t]...)
			for _, l := range lens[t] {
				csr.offsets[ci+1] = csr.offsets[ci] + l
				ci++
			}
		}
		s.edges[p.u][p.pos] = csr
	}
	return s, work
}

// Query returns the query graph the space was built for.
func (s *Space) Query() *graph.Graph { return s.q }

// Candidates returns C(u). The slice aliases internal storage.
func (s *Space) Candidates(u graph.Vertex) []uint32 { return s.candidates[u] }

// AllCandidates returns the per-vertex candidate sets.
func (s *Space) AllCandidates() [][]uint32 { return s.candidates }

// CandidateIndex returns the index of data vertex v within C(u), or -1 if
// v is not a candidate of u.
func (s *Space) CandidateIndex(u graph.Vertex, v uint32) int {
	c := s.candidates[u]
	i := sort.Search(len(c), func(i int) bool { return c[i] >= v })
	if i < len(c) && c[i] == v {
		return i
	}
	return -1
}

// neighborPos returns the position of up within u's neighbor list, or -1.
func (s *Space) neighborPos(u, up graph.Vertex) int {
	ns := s.q.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= up })
	if i < len(ns) && ns[i] == up {
		return i
	}
	return -1
}

// Adjacency returns 𝒜[u->u'](v) — the sorted data vertices of C(u')
// adjacent to candidate v of u — where candIdx is v's index in C(u).
// It returns nil if the directed pair (u, u') is not materialized, or
// if candIdx is out of range — in particular the -1 CandidateIndex
// reports when an over-pruning filter left C(u) empty.
func (s *Space) Adjacency(u, up graph.Vertex, candIdx int) []uint32 {
	pos := s.neighborPos(u, up)
	if pos < 0 {
		return nil
	}
	csr := s.edges[u][pos]
	if csr == nil || candIdx < 0 || candIdx+1 >= len(csr.offsets) {
		return nil
	}
	return csr.targets[csr.offsets[candIdx]:csr.offsets[candIdx+1]]
}

// HasPair reports whether the directed pair (u, u') is materialized.
func (s *Space) HasPair(u, up graph.Vertex) bool {
	pos := s.neighborPos(u, up)
	return pos >= 0 && s.edges[u][pos] != nil
}

// TotalCandidates returns the summed candidate-set sizes.
func (s *Space) TotalCandidates() int {
	n := 0
	for _, c := range s.candidates {
		n += len(c)
	}
	return n
}

// MeanCandidates returns (1/|V(q)|) * sum |C(u)|, the paper's
// candidate-count metric.
func (s *Space) MeanCandidates() float64 {
	if len(s.candidates) == 0 {
		return 0
	}
	return float64(s.TotalCandidates()) / float64(len(s.candidates))
}

// MemoryBytes estimates the heap footprint of the candidate sets and the
// materialized candidate edges, the paper's memory-cost metric.
func (s *Space) MemoryBytes() int64 {
	var b int64
	for _, c := range s.candidates {
		b += int64(len(c)) * 4
	}
	for _, row := range s.edges {
		for _, csr := range row {
			if csr != nil {
				b += int64(len(csr.offsets))*4 + int64(len(csr.targets))*4
			}
		}
	}
	return b
}
