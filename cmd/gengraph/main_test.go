package main

import (
	"os"
	"path/filepath"
	"testing"

	sm "subgraphmatching"
)

func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	t.Cleanup(func() { os.Stdout = old })
}

func TestRunRMAT(t *testing.T) {
	quietStdout(t)
	out := filepath.Join(t.TempDir(), "g.graph")
	if err := run(out, 500, 2000, 4, 1, 0, "", "", false); err != nil {
		t.Fatal(err)
	}
	g, err := sm.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 || g.NumEdges() != 2000 {
		t.Errorf("generated %v", g)
	}
}

func TestRunDataset(t *testing.T) {
	quietStdout(t)
	out := filepath.Join(t.TempDir(), "ye.graph")
	if err := run(out, 0, 0, 0, 0, 0, "ye", "", false); err != nil {
		t.Fatal(err)
	}
	g, err := sm.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3112 {
		t.Errorf("ye stand-in has %d vertices", g.NumVertices())
	}
}

func TestRunList(t *testing.T) {
	quietStdout(t)
	if err := run("", 0, 0, 0, 0, 0, "", "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	quietStdout(t)
	if err := run("", 10, 5, 2, 1, 0, "", "", false); err == nil {
		t.Error("expected error for missing output path")
	}
	out := filepath.Join(t.TempDir(), "g.graph")
	if err := run(out, 0, 0, 0, 0, 0, "bogus", "", false); err == nil {
		t.Error("expected error for unknown dataset")
	}
	if err := run(out, 2, 100, 1, 1, 0, "", "", false); err == nil {
		t.Error("expected error for impossible edge count")
	}
}

func TestRunFromEdgeList(t *testing.T) {
	quietStdout(t)
	dir := t.TempDir()
	el := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(el, []byte("# comment\n1 2\n2 3\n3 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "g.graph")
	if err := run(out, 0, 0, 4, 1, 0, "", el, false); err != nil {
		t.Fatal(err)
	}
	g, err := sm.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Errorf("converted graph %v", g)
	}
	// Mutually exclusive flags.
	if err := run(out, 0, 0, 4, 1, 0, "ye", el, false); err == nil {
		t.Error("expected error for -dataset with -from-edgelist")
	}
}
