package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The text format matches the one used by the paper's released code
// (github.com/RapidsAtHKUST/SubgraphMatching):
//
//	t <numVertices> <numEdges>
//	v <id> <label> <degree>
//	e <u> <v>
//
// Vertex ids must be 0..n-1. The degree column is informational and is
// validated when present.

// Parse reads a graph in the text format from r.
func Parse(r io.Reader) (*Graph, error) {
	if r == nil {
		return nil, fmt.Errorf("graph: nil reader")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	var b *Builder
	declaredDegrees := map[Vertex]int{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "t":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: t line needs 2 arguments", lineNo)
			}
			n, err1 := strconv.Atoi(fields[1])
			m, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: malformed t line %q", lineNo, line)
			}
			b = NewBuilder(n, m)
		case "v":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: v line before t line", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: v line needs id and label", lineNo)
			}
			id, err1 := strconv.ParseUint(fields[1], 10, 32)
			l, err2 := strconv.ParseUint(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed v line %q", lineNo, line)
			}
			if int(id) != b.NumVertices() {
				return nil, fmt.Errorf("graph: line %d: vertex ids must be consecutive from 0, got %d want %d", lineNo, id, b.NumVertices())
			}
			b.AddVertex(Label(l))
			if len(fields) >= 4 {
				d, err := strconv.Atoi(fields[3])
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: malformed degree in %q", lineNo, line)
				}
				declaredDegrees[Vertex(id)] = d
			}
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: e line before t line", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: e line needs two endpoints", lineNo)
			}
			u, err1 := strconv.ParseUint(fields[1], 10, 32)
			v, err2 := strconv.ParseUint(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed e line %q", lineNo, line)
			}
			b.AddEdge(Vertex(u), Vertex(v))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading input: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input (no t line)")
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	for v, want := range declaredDegrees {
		if got := g.Degree(v); got != want {
			return nil, fmt.Errorf("graph: vertex %d declares degree %d but has %d", v, want, got)
		}
	}
	return g, nil
}

// Load reads a graph file in the text format.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	g, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return g, nil
}

// Write serializes g in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "t %d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		if _, err := fmt.Fprintf(bw, "v %d %d %d\n", v, g.Label(Vertex(v)), g.Degree(Vertex(v))); err != nil {
			return err
		}
	}
	var werr error
	g.EachEdge(func(u, v Vertex) bool {
		_, werr = fmt.Fprintf(bw, "e %d %d\n", u, v)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// LoadDir loads every *.graph file in a directory, sorted by filename —
// the layout cmd/genquery writes query sets in.
func LoadDir(dir string) ([]*Graph, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".graph") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("graph: no .graph files in %s", dir)
	}
	out := make([]*Graph, 0, len(names))
	for _, name := range names {
		g, err := Load(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

// Save writes g to a file in the text format.
func Save(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return fmt.Errorf("graph: writing %s: %w", path, err)
	}
	return f.Close()
}
