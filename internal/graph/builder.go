package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates vertices and edges and produces an immutable Graph.
// Duplicate edges and self-loops are rejected at Build time so that every
// Graph in the system satisfies the simple-graph invariant the algorithms
// rely on.
type Builder struct {
	labels []Label
	edges  [][2]Vertex
}

// NewBuilder returns a Builder expecting roughly n vertices and m edges.
func NewBuilder(n, m int) *Builder {
	return &Builder{
		labels: make([]Label, 0, n),
		edges:  make([][2]Vertex, 0, m),
	}
}

// AddVertex appends a vertex with the given label and returns its id.
func (b *Builder) AddVertex(l Label) Vertex {
	b.labels = append(b.labels, l)
	return Vertex(len(b.labels) - 1)
}

// SetLabel overwrites the label of an already-added vertex.
func (b *Builder) SetLabel(v Vertex, l Label) { b.labels[v] = l }

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.labels) }

// AddEdge records the undirected edge (u, v). Validation happens at Build.
func (b *Builder) AddEdge(u, v Vertex) {
	b.edges = append(b.edges, [2]Vertex{u, v})
}

// Build validates the accumulated input and returns the immutable Graph.
// Duplicate edges are deduplicated silently (generators may emit them);
// self-loops and out-of-range endpoints are errors.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.labels)
	for _, e := range b.edges {
		if int(e[0]) >= n || int(e[1]) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) references vertex outside 0..%d", e[0], e[1], n-1)
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", e[0])
		}
	}

	// Normalize to u < v, sort, dedupe.
	norm := make([][2]Vertex, len(b.edges))
	for i, e := range b.edges {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		norm[i] = e
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i][0] != norm[j][0] {
			return norm[i][0] < norm[j][0]
		}
		return norm[i][1] < norm[j][1]
	})
	dedup := norm[:0]
	for i, e := range norm {
		if i > 0 && e == norm[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}

	g := &Graph{
		offsets:        make([]int64, n+1),
		adj:            make([]Vertex, 2*len(dedup)),
		labels:         append([]Label(nil), b.labels...),
		byLabel:        make(map[Label][]Vertex),
		labelPairEdges: make(map[uint64]int64),
	}

	deg := make([]int64, n)
	for _, e := range dedup {
		deg[e[0]]++
		deg[e[1]]++
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
		if int(deg[v]) > g.maxDegree {
			g.maxDegree = int(deg[v])
		}
	}
	cursor := make([]int64, n)
	copy(cursor, g.offsets[:n])
	for _, e := range dedup {
		g.adj[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		g.adj[cursor[e[1]]] = e[0]
		cursor[e[1]]++
		g.labelPairEdges[labelPairKey(g.labels[e[0]], g.labels[e[1]])]++
	}
	for v := 0; v < n; v++ {
		ns := g.adj[g.offsets[v]:g.offsets[v+1]]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}
	for v := 0; v < n; v++ {
		l := g.labels[v]
		g.byLabel[l] = append(g.byLabel[l], Vertex(v))
	}
	return g, nil
}

// MustBuild is Build that panics on error; intended for tests and
// hand-constructed literals where the input is known valid.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph from a label slice (indexed by vertex) and an
// edge list.
func FromEdges(labels []Label, edges [][2]Vertex) (*Graph, error) {
	b := NewBuilder(len(labels), len(edges))
	for _, l := range labels {
		b.AddVertex(l)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// MustFromEdges is FromEdges that panics on error.
func MustFromEdges(labels []Label, edges [][2]Vertex) *Graph {
	g, err := FromEdges(labels, edges)
	if err != nil {
		panic(err)
	}
	return g
}
