package filter

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/querygen"
	"subgraphmatching/internal/rmat"
	"subgraphmatching/internal/testutil"
)

// The differential harness for the parallel preprocessing pipeline: on
// a grid of R-MAT/querygen fixtures it pins down exactly what is and
// is not allowed to differ between the sequential and parallel runners.
//
//   - For every filter and every worker count, the parallel candidate
//     sets are byte-identical to the 1-worker parallel run (parallelism
//     never changes results).
//   - For every filter except GQL, the parallel run is also
//     byte-identical to the sequential Run (only GQL's refinement
//     changes iteration semantics).
//   - GQL's Jacobi refinement keeps, per bounded round budget, a
//     superset of the sequential Gauss–Seidel sets, and converges to
//     exactly the same fix point.

var equivalenceWorkers = []int{1, 2, 4, 8}

// equivFixture is one (data graph, queries) grid cell.
type equivFixture struct {
	name    string
	g       *graph.Graph
	queries []*graph.Graph
}

func equivalenceGrid(t testing.TB) []equivFixture {
	t.Helper()
	var out []equivFixture
	cells := []struct {
		name    string
		rc      rmat.Config
		qc      querygen.Config
	}{
		{
			name: "skew85-dense6",
			rc:   rmat.Config{NumVertices: 1200, NumEdges: 7200, NumLabels: 5, Seed: 31, LabelSkew: 0.85},
			qc:   querygen.Config{NumVertices: 6, Count: 3, Density: querygen.Dense, Seed: 11},
		},
		{
			name: "uniform-sparse8",
			rc:   rmat.Config{NumVertices: 900, NumEdges: 3600, NumLabels: 8, Seed: 7},
			qc:   querygen.Config{NumVertices: 8, Count: 3, Density: querygen.Sparse, Seed: 5},
		},
		{
			name: "fewlabels-any4",
			rc:   rmat.Config{NumVertices: 600, NumEdges: 3000, NumLabels: 3, Seed: 19, LabelSkew: 0.6},
			qc:   querygen.Config{NumVertices: 4, Count: 4, Density: querygen.Any, Seed: 23},
		},
	}
	for _, c := range cells {
		g, err := rmat.Generate(c.rc)
		if err != nil {
			t.Fatalf("%s: rmat: %v", c.name, err)
		}
		qs, err := querygen.Generate(g, c.qc)
		if err != nil {
			t.Fatalf("%s: querygen: %v", c.name, err)
		}
		out = append(out, equivFixture{name: c.name, g: g, queries: qs})
	}
	// The paper's running example keeps the grid anchored to hand-checked
	// candidate sets.
	out = append(out, equivFixture{
		name: "paper", g: testutil.PaperData(), queries: []*graph.Graph{testutil.PaperQuery()},
	})
	return out
}

// assertSortedDeduped fails if any candidate set is not strictly
// increasing (sorted and duplicate-free).
func assertSortedDeduped(t *testing.T, label string, cand [][]uint32) {
	t.Helper()
	for u, c := range cand {
		if !sort.SliceIsSorted(c, func(i, j int) bool { return c[i] < c[j] }) {
			t.Fatalf("%s: C(u%d) not sorted: %v", label, u, c)
		}
		for i := 1; i < len(c); i++ {
			if c[i] == c[i-1] {
				t.Fatalf("%s: C(u%d) has duplicate %d", label, u, c[i])
			}
		}
	}
}

// isSupersetPerVertex reports whether sup[u] ⊇ sub[u] for every u (both
// sorted).
func isSupersetPerVertex(sup, sub [][]uint32) bool {
	for u := range sub {
		i := 0
		for _, v := range sub[u] {
			for i < len(sup[u]) && sup[u][i] < v {
				i++
			}
			if i >= len(sup[u]) || sup[u][i] != v {
				return false
			}
		}
	}
	return true
}

func TestParallelFiltersMatchOneWorkerExactly(t *testing.T) {
	for _, f := range equivalenceGrid(t) {
		for qi, q := range f.queries {
			for _, m := range Methods() {
				name := fmt.Sprintf("%s/q%d/%v", f.name, qi, m)
				seq, err := Run(m, q, f.g)
				if err != nil {
					t.Fatalf("%s: sequential: %v", name, err)
				}
				base, err := RunParallel(m, q, f.g, 1)
				if err != nil {
					t.Fatalf("%s: workers=1: %v", name, err)
				}
				assertSortedDeduped(t, name, base)
				for _, w := range equivalenceWorkers[1:] {
					got, err := RunParallel(m, q, f.g, w)
					if err != nil {
						t.Fatalf("%s: workers=%d: %v", name, w, err)
					}
					if !reflect.DeepEqual(got, base) {
						t.Fatalf("%s: workers=%d differs from workers=1:\n got %v\nwant %v",
							name, w, got, base)
					}
				}
				if m == GQL {
					// Jacobi within the bounded default budget may lag the
					// in-place removals by up to one round: superset only.
					if !isSupersetPerVertex(base, seq) {
						t.Fatalf("%s: Jacobi sets not a superset of Gauss–Seidel:\njacobi %v\ngauss  %v",
							name, base, seq)
					}
				} else if !reflect.DeepEqual(base, seq) {
					t.Fatalf("%s: parallel differs from sequential:\n got %v\nwant %v", name, base, seq)
				}
			}
		}
	}
}

// TestGraphQLJacobiVsGaussSeidelRounds pins the per-round relationship:
// after any bounded round budget the Jacobi sets contain the
// Gauss–Seidel sets, and with the budget lifted (running both to
// convergence) they are identical.
func TestGraphQLJacobiVsGaussSeidelRounds(t *testing.T) {
	const convergedRounds = 64 // both runners break at the fix point long before this
	for _, f := range equivalenceGrid(t) {
		for qi, q := range f.queries {
			name := fmt.Sprintf("%s/q%d", f.name, qi)
			for rounds := 1; rounds <= 3; rounds++ {
				gauss := RunGraphQL(q, f.g, rounds)
				jacobi := RunGraphQLParallel(q, f.g, rounds, 4)
				if !isSupersetPerVertex(jacobi, gauss) {
					t.Fatalf("%s rounds=%d: Jacobi not a superset:\njacobi %v\ngauss  %v",
						name, rounds, jacobi, gauss)
				}
			}
			gauss := RunGraphQL(q, f.g, convergedRounds)
			for _, w := range equivalenceWorkers {
				jacobi := RunGraphQLParallel(q, f.g, convergedRounds, w)
				if !reflect.DeepEqual(jacobi, gauss) {
					t.Fatalf("%s workers=%d: fix points differ:\njacobi %v\ngauss  %v",
						name, w, jacobi, gauss)
				}
			}
		}
	}
}

// TestSteadyParallelReachesSameFixPoint checks the strongest filter
// separately: STEADY's fix point is order-independent, so the Jacobi
// parallel runner must reproduce it bit for bit.
func TestSteadyParallelReachesSameFixPoint(t *testing.T) {
	for _, f := range equivalenceGrid(t) {
		for qi, q := range f.queries {
			want := RunSteady(q, f.g)
			for _, w := range equivalenceWorkers {
				got := RunSteadyParallel(q, f.g, w)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/q%d workers=%d: steady fix points differ", f.name, qi, w)
				}
			}
		}
	}
}

// TestDPIsoParallelMatchesSequential locks the refactored root
// selection: RunDPIsoParallel derives the root from the already-built
// LDF sets and must agree with RunDPIso (which calls DPIsoRoot) on
// every fixture and pass count.
func TestDPIsoParallelMatchesSequential(t *testing.T) {
	for _, f := range equivalenceGrid(t) {
		for qi, q := range f.queries {
			for _, passes := range []int{1, 3, 5} {
				want := RunDPIso(q, f.g, passes)
				for _, w := range equivalenceWorkers {
					got := RunDPIsoParallel(q, f.g, passes, w)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/q%d passes=%d workers=%d: differs", f.name, qi, passes, w)
					}
				}
			}
		}
	}
}

// TestTreeFiltersEmptyMidLevel pins the degenerate wave shape: a
// generation step mid-tree prunes C(u) to empty, so every deeper wave
// fans out over an empty frontier and the backward cascade empties the
// ancestors. Query: path u0(A)-u1(B)-u2(C)-u3(A); data: path
// v0(A)-v1(B)-v2(C), where v2's degree is too small for u2, so C(u2)
// dies during generation with a whole level still below it. The
// parallel runners must agree with the sequential ones bit for bit and
// must not panic on the empty waves.
func TestTreeFiltersEmptyMidLevel(t *testing.T) {
	mk := func(labels []graph.Label, edges [][2]graph.Vertex) *graph.Graph {
		b := graph.NewBuilder(len(labels), len(edges))
		for _, l := range labels {
			b.AddVertex(l)
		}
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	q := mk([]graph.Label{0, 1, 2, 0}, [][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}})
	g := mk([]graph.Label{0, 1, 2}, [][2]graph.Vertex{{0, 1}, {1, 2}})
	for _, m := range []Method{CFL, CECI} {
		seq, err := Run(m, q, g)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		empty := 0
		for u := range seq {
			if len(seq[u]) == 0 {
				empty++
			}
		}
		if empty == 0 {
			t.Fatalf("%v: fixture did not produce an empty candidate set: %v", m, seq)
		}
		for _, w := range equivalenceWorkers {
			got, err := RunParallel(m, q, g, w)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", m, w, err)
			}
			if !reflect.DeepEqual(got, seq) {
				t.Fatalf("%v workers=%d: parallel differs on empty-level fixture:\n got %v\nwant %v",
					m, w, got, seq)
			}
		}
	}
}

// TestRunParallelStatsTalliesWork sanity-checks the makespan
// instrumentation: tallies must be non-empty for the parallelized
// methods and sum to at least the total label-pool work of one scan.
func TestRunParallelStatsTalliesWork(t *testing.T) {
	f := equivalenceGrid(t)[0]
	q := f.queries[0]
	for _, m := range Methods() {
		_, work, err := RunParallelStats(m, q, f.g, 4)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if work == nil {
			t.Fatalf("%v: nil tally from parallel run", m)
		}
		var total uint64
		for _, w := range work {
			total += w
		}
		if total == 0 {
			t.Errorf("%v: zero work tallied", m)
		}
	}
}
