package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	sm "subgraphmatching"
)

func TestRunRecommend(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.graph")
	g, err := sm.GenerateRMAT(sm.RMATConfig{NumVertices: 800, NumEdges: 6000, NumLabels: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.SaveGraph(dataPath, g); err != nil {
		t.Fatal(err)
	}
	out, err := os.Create(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run(out, dataPath, 8, 2, 500*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("no output written")
	}
	s := string(data)
	for _, want := range []string{"density class", "winner:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunRecommendErrors(t *testing.T) {
	if err := run(os.Stdout, "", 8, 1, time.Second, 1); err == nil {
		t.Error("expected error for missing data path")
	}
	if err := run(os.Stdout, "/nonexistent.graph", 8, 1, time.Second, 1); err == nil {
		t.Error("expected error for missing file")
	}
}
