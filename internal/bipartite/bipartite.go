// Package bipartite implements maximum bipartite matching via Kuhn's
// augmenting-path algorithm.
//
// GraphQL's global refinement (the pseudo subgraph isomorphism test of
// Section 3.1.1) needs a semi-perfect matching check: given candidate v
// for query vertex u, build the bipartite graph between N(u) and N(v) and
// verify that every vertex of N(u) can be matched. Observation 3.2 in the
// paper is exactly this test.
package bipartite

// Matcher computes maximum matchings on bipartite graphs with a fixed
// number of left vertices. It is reusable across calls to avoid
// allocation in the refinement loop; it is not safe for concurrent use.
type Matcher struct {
	adj     [][]int32 // adjacency: left vertex -> right vertices
	matchR  map[int32]int32
	visited map[int32]bool
}

// NewMatcher returns a Matcher for up to maxLeft left vertices.
func NewMatcher(maxLeft int) *Matcher {
	return &Matcher{
		adj:     make([][]int32, maxLeft),
		matchR:  make(map[int32]int32),
		visited: make(map[int32]bool),
	}
}

// Reset prepares the matcher for a new bipartite graph with nLeft left
// vertices.
func (m *Matcher) Reset(nLeft int) {
	if nLeft > len(m.adj) {
		m.adj = make([][]int32, nLeft)
	}
	for i := 0; i < nLeft; i++ {
		m.adj[i] = m.adj[i][:0]
	}
}

// AddEdge records an edge from left vertex l (0-based) to right vertex r
// (arbitrary non-negative id).
func (m *Matcher) AddEdge(l int, r int32) {
	m.adj[l] = append(m.adj[l], r)
}

// HasSemiPerfectMatching reports whether all nLeft left vertices can be
// matched simultaneously.
func (m *Matcher) HasSemiPerfectMatching(nLeft int) bool {
	for k := range m.matchR {
		delete(m.matchR, k)
	}
	for l := 0; l < nLeft; l++ {
		// Fast fail: a left vertex with no edges can never match.
		if len(m.adj[l]) == 0 {
			return false
		}
	}
	for l := 0; l < nLeft; l++ {
		for k := range m.visited {
			delete(m.visited, k)
		}
		if !m.augment(l) {
			return false
		}
	}
	return true
}

// MaximumMatchingSize returns the size of a maximum matching over the
// first nLeft left vertices.
func (m *Matcher) MaximumMatchingSize(nLeft int) int {
	for k := range m.matchR {
		delete(m.matchR, k)
	}
	size := 0
	for l := 0; l < nLeft; l++ {
		for k := range m.visited {
			delete(m.visited, k)
		}
		if m.augment(l) {
			size++
		}
	}
	return size
}

func (m *Matcher) augment(l int) bool {
	for _, r := range m.adj[l] {
		if m.visited[r] {
			continue
		}
		m.visited[r] = true
		owner, taken := m.matchR[r]
		if !taken || m.augment(int(owner)) {
			m.matchR[r] = int32(l)
			return true
		}
	}
	return false
}
