package par

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 7, 100} {
			hits := make([]int32, n)
			Run(workers, n, func(w, task int) uint64 {
				atomic.AddInt32(&hits[task], 1)
				return 1
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestRunTalliesSumToTotalWork(t *testing.T) {
	work := Run(4, 100, func(w, task int) uint64 { return uint64(task) })
	var sum uint64
	for _, v := range work {
		sum += v
	}
	if want := uint64(100 * 99 / 2); sum != want {
		t.Fatalf("tallies sum to %d, want %d", sum, want)
	}
}

func TestRunClampsWorkers(t *testing.T) {
	if got := len(Run(8, 3, func(w, t int) uint64 { return 1 })); got != 3 {
		t.Errorf("workers clamped to %d, want 3", got)
	}
	if got := len(Run(0, 5, func(w, t int) uint64 { return 1 })); got != 1 {
		t.Errorf("workers=0 yields %d tallies, want 1", got)
	}
}

func TestMakespanBound(t *testing.T) {
	if got := MakespanBound(nil); got != 1 {
		t.Errorf("empty tally bound = %v, want 1", got)
	}
	if got := MakespanBound([]uint64{4, 4, 4, 4}); got != 4 {
		t.Errorf("even tally bound = %v, want 4", got)
	}
	if got := MakespanBound([]uint64{12, 2, 1, 1}); got != 16.0/12 {
		t.Errorf("skewed tally bound = %v, want %v", got, 16.0/12)
	}
}

func TestAccumulate(t *testing.T) {
	dst := []uint64{1, 2, 3}
	Accumulate(dst, []uint64{10, 20})
	if dst[0] != 11 || dst[1] != 22 || dst[2] != 3 {
		t.Errorf("Accumulate = %v", dst)
	}
}
