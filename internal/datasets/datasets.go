// Package datasets provides deterministic stand-ins for the eight
// real-world datasets of the paper's Table 3. The original graphs
// (protein interaction networks, WordNet, US Patents, Youtube, DBLP,
// eu2005) are not redistributable here, so each stand-in is an R-MAT
// power-law graph whose vertex count, average degree, label-set size and
// label skew mimic the original; the larger graphs are scaled down so the
// full experiment suite runs on a laptop. See DESIGN.md ("Substitutions")
// for why this preserves the study's findings.
package datasets

import (
	"fmt"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/rmat"
)

// Info describes one dataset stand-in and the original it mimics.
type Info struct {
	// Name is the paper's short name (ye, hu, hp, wn, up, yt, db, eu).
	Name string
	// FullName is the original dataset's name.
	FullName string
	// Category is the paper's dataset category.
	Category string

	// Vertices, Edges, Labels parameterize the stand-in.
	Vertices, Edges, Labels int
	// LabelSkew is the probability mass of label 0 (0 = uniform).
	LabelSkew float64

	// PaperVertices, PaperEdges, PaperLabels, PaperDegree record
	// Table 3's original properties for reference.
	PaperVertices, PaperEdges, PaperLabels int
	PaperDegree                            float64

	// Dense marks the datasets the paper calls dense (hu, eu), where the
	// study recommends GraphQL-style ordering over RI.
	Dense bool

	// MaxQuerySize is the largest query-set size the paper uses on this
	// dataset (20 for hu/wn, 32 elsewhere — Table 4).
	MaxQuerySize int

	seed int64
}

// AvgDegree returns the stand-in's average degree target.
func (i Info) AvgDegree() float64 { return 2 * float64(i.Edges) / float64(i.Vertices) }

// catalog lists the stand-ins. The three biology graphs and WordNet keep
// their original sizes (they are small); the four large graphs are scaled
// down preserving average degree and label count.
var catalog = []Info{
	{
		Name: "ye", FullName: "Yeast", Category: "Biology",
		Vertices: 3112, Edges: 12519, Labels: 71,
		PaperVertices: 3112, PaperEdges: 12519, PaperLabels: 71, PaperDegree: 8.0,
		MaxQuerySize: 32, seed: 101,
	},
	{
		Name: "hu", FullName: "Human", Category: "Biology",
		Vertices: 4674, Edges: 86282, Labels: 44,
		PaperVertices: 4674, PaperEdges: 86282, PaperLabels: 44, PaperDegree: 36.9,
		Dense: true, MaxQuerySize: 20, seed: 102,
	},
	{
		Name: "hp", FullName: "HPRD", Category: "Biology",
		Vertices: 9460, Edges: 34998, Labels: 307,
		PaperVertices: 9460, PaperEdges: 34998, PaperLabels: 307, PaperDegree: 7.4,
		MaxQuerySize: 32, seed: 103,
	},
	{
		Name: "wn", FullName: "WordNet", Category: "Lexical",
		Vertices: 76853, Edges: 120399, Labels: 5, LabelSkew: 0.8,
		PaperVertices: 76853, PaperEdges: 120399, PaperLabels: 5, PaperDegree: 3.1,
		MaxQuerySize: 20, seed: 104,
	},
	{
		Name: "up", FullName: "US Patents", Category: "Citation",
		Vertices: 60000, Edges: 264000, Labels: 20, // scaled ~63x from 3.77M vertices, d=8.8 preserved
		PaperVertices: 3774768, PaperEdges: 16518947, PaperLabels: 20, PaperDegree: 8.8,
		MaxQuerySize: 32, seed: 105,
	},
	{
		Name: "yt", FullName: "Youtube", Category: "Social",
		Vertices: 50000, Edges: 132500, Labels: 25, // scaled ~23x from 1.13M vertices, d=5.3 preserved
		PaperVertices: 1134890, PaperEdges: 2987624, PaperLabels: 25, PaperDegree: 5.3,
		MaxQuerySize: 32, seed: 106,
	},
	{
		Name: "db", FullName: "DBLP", Category: "Social",
		Vertices: 40000, Edges: 132000, Labels: 15, // scaled ~8x from 317K vertices, d=6.6 preserved
		PaperVertices: 317080, PaperEdges: 1049866, PaperLabels: 15, PaperDegree: 6.6,
		MaxQuerySize: 32, seed: 107,
	},
	{
		Name: "eu", FullName: "eu2005", Category: "Web",
		Vertices: 20000, Edges: 374000, Labels: 40, // scaled ~43x from 863K vertices, d=37.4 preserved
		PaperVertices: 862664, PaperEdges: 16138468, PaperLabels: 40, PaperDegree: 37.4,
		Dense: true, MaxQuerySize: 32, seed: 108,
	},
}

// Catalog returns descriptions of all dataset stand-ins, in the paper's
// Table 3 order.
func Catalog() []Info { return append([]Info(nil), catalog...) }

// Lookup returns the Info for a short name.
func Lookup(name string) (Info, error) {
	for _, i := range catalog {
		if i.Name == name {
			return i, nil
		}
	}
	return Info{}, fmt.Errorf("datasets: unknown dataset %q (known: ye hu hp wn up yt db eu)", name)
}

// Generate builds the stand-in graph for the named dataset. Generation
// is deterministic: the same name always yields the same graph.
func Generate(name string) (*graph.Graph, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return rmat.Generate(rmat.Config{
		NumVertices: info.Vertices,
		NumEdges:    info.Edges,
		NumLabels:   info.Labels,
		LabelSkew:   info.LabelSkew,
		Seed:        info.seed,
	})
}
