package main

import (
	"testing"
	"time"
)

func TestFuzzFindsNoFailures(t *testing.T) {
	trials, failures := fuzz(2*time.Second, 12345, 30, false)
	if trials == 0 {
		t.Fatal("no trials ran")
	}
	if failures != 0 {
		t.Fatalf("%d/%d trials failed", failures, trials)
	}
}

func TestRunTrialDeterministic(t *testing.T) {
	ok1, d1 := runTrial(777, 30)
	ok2, d2 := runTrial(777, 30)
	if ok1 != ok2 || d1 != d2 {
		t.Errorf("runTrial not deterministic: %v %q vs %v %q", ok1, d1, ok2, d2)
	}
}
