package core

import (
	"math/rand"
	"testing"

	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/testutil"
)

func kernelPolicies() []intersect.Policy {
	return []intersect.Policy{
		intersect.PolicyAdaptive, intersect.PolicyMerge, intersect.PolicyGallop,
		intersect.PolicyHybrid, intersect.PolicyBlock,
	}
}

// TestKernelPolicyGridAgrees runs the full pipeline under every kernel
// policy, sequential and parallel, and demands identical embedding
// counts plus a populated kernel mix on the intersection locals.
func TestKernelPolicyGridAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	checked := 0
	for trial := 0; trial < 12 && checked < 6; trial++ {
		g := testutil.RandomGraph(rng, 20+rng.Intn(20), 70+rng.Intn(50), 2)
		q := testutil.RandomConnectedQuery(rng, g, 4+rng.Intn(3))
		if q == nil {
			continue
		}
		want := testutil.BruteForceCount(q, g, 0)
		if want == 0 {
			continue
		}
		checked++
		for _, local := range []enumerate.LocalCandidates{enumerate.Intersect, enumerate.IntersectBlock} {
			for _, p := range kernelPolicies() {
				for _, parallel := range []int{0, 3} {
					cfg := Config{Filter: filter.GQL, Order: order.GQL, Local: local, Kernel: p}
					res, err := Match(q, g, cfg, Limits{Parallel: parallel})
					if err != nil {
						t.Fatalf("local %v policy %v parallel %d: %v", local, p, parallel, err)
					}
					if res.Embeddings != want {
						t.Errorf("local %v policy %v parallel %d: %d embeddings, want %d",
							local, p, parallel, res.Embeddings, want)
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no trial produced embeddings")
	}
}

// TestKernelMixSurfaced pins the plan-level accounting: an adaptive run
// over a block-materialized space reports its kernel mix on the Result,
// and the trace span carries the same tallies, in both the sequential
// and the parallel paths.
func TestKernelMixSurfaced(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	for _, parallel := range []int{0, 2} {
		cfg := Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect}
		res, err := Match(q, g, cfg, Limits{Parallel: parallel, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Embeddings != 1 {
			t.Fatalf("parallel %d: %d embeddings, want 1", parallel, res.Embeddings)
		}
		if res.Kernels.Total() == 0 {
			t.Errorf("parallel %d: kernel mix empty on an intersect run", parallel)
		}
		if res.Trace == nil {
			t.Fatalf("parallel %d: no trace", parallel)
		}
	}
	// Non-intersection locals report no kernel executions.
	res, err := Match(q, g, Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Scan}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels.Total() != 0 {
		t.Errorf("scan local tallied kernels: %v", res.Kernels)
	}
}

// TestAdaptiveDefaultMaterializesBlocks checks Preprocess's policy:
// the adaptive default (and PolicyBlock) build the flat block layout;
// pinned slice-only policies skip it.
func TestAdaptiveDefaultMaterializesBlocks(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cases := []struct {
		kernel intersect.Policy
		want   bool
	}{
		{intersect.PolicyAdaptive, true},
		{intersect.PolicyBlock, true},
		{intersect.PolicyHybrid, false},
		{intersect.PolicyMerge, false},
		{intersect.PolicyGallop, false},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			cfg := Config{Filter: filter.GQL, Order: order.GQL, Local: enumerate.Intersect, Kernel: c.kernel}
			plan, err := Preprocess(q, g, cfg, workers)
			if err != nil {
				t.Fatalf("kernel %v workers %d: %v", c.kernel, workers, err)
			}
			if got := plan.Space.HasBlocks(); got != c.want {
				t.Errorf("kernel %v workers %d: HasBlocks = %v, want %v", c.kernel, workers, got, c.want)
			}
		}
	}
}
