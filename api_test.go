package subgraphmatching_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	sm "subgraphmatching"
	"subgraphmatching/internal/testutil"
)

func paperGraphs() (*sm.Graph, *sm.Graph) {
	return testutil.PaperQuery(), testutil.PaperData()
}

func TestMatchAllPresets(t *testing.T) {
	q, g := paperGraphs()
	for _, a := range sm.Algorithms() {
		res, err := sm.Match(q, g, sm.Options{Algorithm: a, TimeLimit: time.Minute})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.Embeddings != 1 {
			t.Errorf("%v: %d embeddings, want 1", a, res.Embeddings)
		}
	}
}

func TestMatchCustomConfig(t *testing.T) {
	q, g := paperGraphs()
	cfg := sm.Config{
		Filter:      sm.FilterGQL,
		Order:       sm.OrderRI,
		Local:       sm.LocalIntersect,
		FailingSets: true,
	}
	n, err := sm.Count(q, g, sm.Options{Custom: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("Count = %d, want 1", n)
	}
}

func TestFindAll(t *testing.T) {
	q, g := paperGraphs()
	matches, err := sm.FindAll(q, g, sm.Options{Algorithm: sm.AlgoOptimized}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("FindAll returned %d matches", len(matches))
	}
	want := testutil.PaperMatch()
	for u, v := range want {
		if matches[0][u] != v {
			t.Errorf("match = %v, want %v", matches[0], want)
		}
	}
	// Limit is respected on a graph with several matches.
	tri := mustFromEdges(t, make([]sm.Label, 3), [][2]sm.Vertex{{0, 1}, {1, 2}, {0, 2}})
	k5labels := make([]sm.Label, 5)
	var edges [][2]sm.Vertex
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]sm.Vertex{sm.Vertex(i), sm.Vertex(j)})
		}
	}
	k5 := mustFromEdges(t, k5labels, edges)
	got, err := sm.FindAll(tri, k5, sm.Options{Algorithm: sm.AlgoOptimized}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("FindAll limit: got %d", len(got))
	}
}

func mustFromEdges(t *testing.T, labels []sm.Label, edges [][2]sm.Vertex) *sm.Graph {
	t.Helper()
	g, err := sm.FromEdges(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderAndIO(t *testing.T) {
	b := sm.NewBuilder(3, 2)
	a := b.AddVertex(0)
	c := b.AddVertex(1)
	d := b.AddVertex(0)
	b.AddEdge(a, c)
	b.AddEdge(c, d)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sm.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := sm.ParseGraph(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 3 || g2.NumEdges() != 2 {
		t.Errorf("round trip: %v", g2)
	}
}

func TestGenerators(t *testing.T) {
	g, err := sm.GenerateRMAT(sm.RMATConfig{NumVertices: 500, NumEdges: 3000, NumLabels: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := sm.GenerateQueries(g, sm.QueryConfig{NumVertices: 6, Count: 3, Density: sm.QueryDense, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		n, err := sm.Count(q, g, sm.Options{Algorithm: sm.AlgoOptimized, MaxEmbeddings: 10})
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Error("extracted query has no matches in its source graph")
		}
	}
}

func TestDatasetCatalogAndParse(t *testing.T) {
	if len(sm.DatasetCatalog()) != 8 {
		t.Errorf("catalog has %d entries", len(sm.DatasetCatalog()))
	}
	g, err := sm.Dataset("ye")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3112 {
		t.Errorf("ye has %d vertices", g.NumVertices())
	}
	a, err := sm.ParseAlgorithm("DPiso")
	if err != nil || a != sm.AlgoDPIso {
		t.Errorf("ParseAlgorithm: %v %v", a, err)
	}
}
