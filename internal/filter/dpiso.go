package filter

import (
	"fmt"
	"time"

	"subgraphmatching/internal/graph"
)

// RunDPIso implements DP-iso's filtering (paper Section 3.1.1, Example
// 3.4): every C(u) is initialized with LDF, then refined in `passes`
// alternating sweeps. Odd-numbered sweeps walk the reverse of the BFS
// order δ and prune C(u) against its forward neighbors (the first such
// sweep also applies NLF); even-numbered sweeps walk δ and prune against
// backward neighbors. The original paper uses passes = 3.
func RunDPIso(q, g *graph.Graph, passes int) [][]uint32 {
	root := DPIsoRoot(q, g)
	return runDPIsoFrom(q, g, root, passes, nil)
}

// runDPIsoFrom optionally records trace stages: "init" for the LDF
// initialization, then one "pass-<k>" per alternating refinement sweep.
func runDPIsoFrom(q, g *graph.Graph, root graph.Vertex, passes int, tr *StageTrace) [][]uint32 {
	stageStart := time.Now()
	t := graph.NewBFSTree(q, root)
	s := newState(q, g)
	for u := 0; u < q.NumVertices(); u++ {
		s.setCandidates(graph.Vertex(u), s.ldfCandidates(graph.Vertex(u)))
	}
	tr.add("init", stageStart, s.cand)
	s.dpisoPassesTraced(t, passes, tr)
	return s.result()
}

// dpisoPasses runs DP-iso's alternating refinement sweeps over already
// initialized (LDF) candidate sets. The sweeps prune in sequence along
// the BFS order — each depends on the previous removals — so both the
// sequential and the parallel runner share this exact loop and differ
// only in how the initialization was produced.
func (s *state) dpisoPasses(t *graph.BFSTree, passes int) {
	s.dpisoPassesTraced(t, passes, nil)
}

// dpisoPassesTraced is dpisoPasses with one trace stage per sweep.
func (s *state) dpisoPassesTraced(t *graph.BFSTree, passes int, tr *StageTrace) {
	stageStart := time.Now()
	q := s.q
	pos := make([]int, q.NumVertices())
	for i, u := range t.Order {
		pos[u] = i
	}
	for pass := 0; pass < passes; pass++ {
		if pass%2 == 0 {
			// Reverse δ: prune against forward neighbors.
			for i := len(t.Order) - 1; i >= 0; i-- {
				u := t.Order[i]
				if pass == 0 {
					s.applyNLF(u)
				}
				for _, un := range q.Neighbors(u) {
					if pos[un] > i {
						s.prune(u, un)
					}
				}
			}
		} else {
			// Along δ: prune against backward neighbors.
			for i, u := range t.Order {
				for _, un := range q.Neighbors(u) {
					if pos[un] < i {
						s.prune(u, un)
					}
				}
			}
		}
		stageStart = tr.add(fmt.Sprintf("pass-%d", pass+1), stageStart, s.cand)
	}
}

// applyNLF removes the candidates of u failing the NLF condition.
func (s *state) applyNLF(u graph.Vertex) {
	c := s.cand[u]
	kept := c[:0]
	for _, v := range c {
		if s.nlfOK(u, v) {
			kept = append(kept, v)
		} else {
			s.member[u].Clear(v)
		}
	}
	s.cand[u] = kept
}
