package store

import (
	"errors"
	"math/rand"
	"testing"

	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/testutil"
)

// FuzzSnapshotRoundTrip feeds mutated snapshot bytes to Decode. The
// invariant under fuzzing: Decode either fails with a typed error
// (ErrCorrupt / ErrVersion) or yields a graph whose recomputed
// fingerprint matches the trailer — it never panics and never returns
// a silently wrong graph. Valid inputs must round-trip byte-identically.
func FuzzSnapshotRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][3]int{{1, 0, 1}, {4, 4, 2}, {40, 120, 3}, {120, 500, 6}} {
		g := testutil.RandomGraph(rng, shape[0], shape[1], shape[2])
		data, _, err := Encode(g)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// A few mutated seeds steer the fuzzer toward interesting regions.
		for _, off := range []int{0, 9, 17, 40, headerSize + 5, len(data) / 2, len(data) - 10} {
			if off < len(data) {
				mut := append([]byte(nil), data...)
				mut[off] ^= 0x40
				f.Add(mut)
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte(snapMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, fp, err := Decode(data, DecodeOptions{VerifyFingerprint: true})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Decode accepted the bytes: the graph must be internally
		// consistent and re-encode to a decodable snapshot with the same
		// fingerprint.
		if got := graph.FingerprintOf(g); got != fp {
			t.Fatalf("accepted graph hashes to %x, trailer says %x", got[:8], fp[:8])
		}
		re, fp2, err := Encode(g)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if fp2 != fp {
			t.Fatalf("re-encode changed fingerprint")
		}
		g2, _, err := Decode(re, DecodeOptions{VerifyFingerprint: true})
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if graph.FingerprintOf(g2) != fp {
			t.Fatalf("second round trip changed the graph")
		}
	})
}
