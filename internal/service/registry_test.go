package service

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/testutil"
)

func TestRegistryRegisterAndGet(t *testing.T) {
	var r registry
	g := testutil.PaperData()
	info, err := r.register("paper", g, false, time.Unix(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "paper" || info.Vertices != g.NumVertices() || info.Edges != g.NumEdges() {
		t.Fatalf("info = %+v", info)
	}
	if info.Generation == 0 {
		t.Fatal("generation must start above zero")
	}
	e, err := r.get("paper")
	if err != nil || e.g != g {
		t.Fatalf("get = (%v, %v)", e, err)
	}
	if _, err := r.get("nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("get unknown err = %v, want ErrUnknownGraph", err)
	}
}

func TestRegistryNameValidation(t *testing.T) {
	var r registry
	g := testutil.PaperData()
	if _, err := r.register("", g, false, time.Now()); !errors.Is(err, ErrInvalidGraphName) {
		t.Fatalf("empty name err = %v", err)
	}
	long := strings.Repeat("x", maxGraphNameLen+1)
	if _, err := r.register(long, g, false, time.Now()); !errors.Is(err, ErrInvalidGraphName) {
		t.Fatalf("long name err = %v", err)
	}
	if _, err := r.register("ok", nil, false, time.Now()); !errors.Is(err, core.ErrNilGraph) {
		t.Fatalf("nil graph err = %v", err)
	}
}

func TestRegistryDuplicateAndReplace(t *testing.T) {
	var r registry
	g1 := testutil.PaperData()
	g2 := testutil.RandomGraph(rand.New(rand.NewSource(1)), 20, 40, 2)
	first, err := r.register("g", g1, false, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.register("g", g2, false, time.Now()); !errors.Is(err, ErrDuplicateGraph) {
		t.Fatalf("duplicate err = %v", err)
	}
	second, err := r.register("g", g2, true, time.Now())
	if err != nil {
		t.Fatalf("replace: %v", err)
	}
	if second.Generation <= first.Generation {
		t.Fatalf("replace generation %d must exceed %d", second.Generation, first.Generation)
	}
	e, _ := r.get("g")
	if e.g != g2 {
		t.Fatal("get returned the pre-replace graph")
	}
}

func TestRegistryUnregisterAndList(t *testing.T) {
	var r registry
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := r.register(name, testutil.PaperData(), false, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	infos := r.list()
	if len(infos) != 3 || infos[0].Name != "alpha" || infos[1].Name != "mid" || infos[2].Name != "zeta" {
		t.Fatalf("list = %+v, want name-sorted", infos)
	}
	gen, err := r.unregister("mid")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 {
		t.Fatalf("unregistered generation = %d, want 3 (third registration)", gen)
	}
	if _, err := r.unregister("mid"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("double unregister err = %v", err)
	}
	if len(r.list()) != 2 {
		t.Fatal("unregister did not remove the entry")
	}
}
