package filter

import (
	"fmt"
	"math"
	"time"

	"subgraphmatching/internal/bipartite"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/par"
)

// Parallel filtering. The per-query-vertex phases of the filters — LDF
// and NLF candidate generation, GraphQL's profile-based local pruning,
// DP-iso's LDF initialization — examine each (query vertex, data
// vertex) pair independently, so they fan out over a worker pool: the
// label pool of every query vertex is cut into index chunks, chunks are
// distributed dynamically (package par), and the per-chunk outputs are
// stitched back in chunk order, which keeps the result byte-identical
// to a single-worker run.
//
// GraphQL's global refinement and STEADY's fix-point pruning are not
// independent per vertex: the sequential code removes candidates in
// place, so each check sees the removals of the previous one
// (Gauss–Seidel). The parallel runners instead refine in Jacobi rounds
// against an immutable snapshot of the previous round's candidate sets:
// all survivor sets for one round are computed concurrently, then the
// removals are applied at a barrier, and only the query vertices with a
// changed neighbor are re-checked in the next round (frontier). Within
// a bounded round budget a Jacobi round prunes no more than a
// Gauss–Seidel round (its snapshot is never smaller), so per round the
// Jacobi sets are a superset of the sequential ones; iterated to the
// fix point both orders converge to the same unique maximal consistent
// sets, because the pruning conditions are monotone in the candidate
// sets (chaotic iteration of a monotone decreasing operator).
// equivalence_test.go pins down both properties.
//
// CFL and CECI run their BFS-tree passes wave-scheduled (see
// tree_parallel.go): their single-pass pruning sequences are replayed
// exactly, so — unlike GQL — their parallel output is byte-identical
// to the sequential one at every worker count.

// genChunk is the number of label-pool vertices one generation task
// scans. Small enough that a hub label's pool splits into many tasks
// (load balance under label skew), large enough that the per-task
// bookkeeping stays negligible.
const genChunk = 256

// refineChunk is the number of candidates one refinement task checks.
const refineChunk = 128

// scratch is one worker's private mutable state. Everything the
// per-task closures touch besides task-indexed output slots lives here.
type scratch struct {
	counter *graph.LabelCounter
	matcher *bipartite.Matcher
	gProf   *profiler    // radius-r data-graph profiles (GQL, radius > 1)
	qProf   *profiler    // radius-r query profiles
	want    labelProfile // current task's query-side profile
}

func (s *state) newScratches(workers, radius int) []*scratch {
	sc := make([]*scratch, workers)
	for w := range sc {
		sc[w] = &scratch{
			counter: graph.NewLabelCounter(graph.MaxLabelOf(s.q, s.g)),
			matcher: bipartite.NewMatcher(s.q.MaxDegree()),
		}
		if radius > 1 {
			sc[w].gProf = newProfiler(s.g, radius)
			sc[w].qProf = newProfiler(s.q, radius)
		}
	}
	return sc
}

// RunParallel executes method m with its default parameters across
// `workers` goroutines. The result is deterministic: identical for
// every workers value, including 1. For every method except GQL it is
// also byte-identical to the sequential Run — CFL and CECI replay
// their sequential operation sequence wave-scheduled (tree_parallel.go).
// GQL's global refinement runs in Jacobi rounds (see the package
// comment above), which within the default round budget prunes a
// superset of the sequential Gauss–Seidel sets — still sound and
// complete, just up to one round behind.
func RunParallel(m Method, q, g *graph.Graph, workers int) ([][]uint32, error) {
	cand, _, err := RunParallelStats(m, q, g, workers)
	return cand, err
}

// RunParallelStats is RunParallel returning also the per-worker work
// tallies of the parallel phases (candidate vertices examined), the
// input to par.MakespanBound. Every method reports a tally of length
// `workers` (clamped to at least 1).
func RunParallelStats(m Method, q, g *graph.Graph, workers int) ([][]uint32, []uint64, error) {
	return RunParallelTraced(m, q, g, workers, nil)
}

// RunParallelTraced is RunParallelStats with per-stage instrumentation:
// each method records the same stage names as its sequential RunTraced
// counterpart (stage boundaries are the parallel barriers, so per-stage
// candidate counts remain comparable across the two paths). tr may be
// nil.
func RunParallelTraced(m Method, q, g *graph.Graph, workers int, tr *StageTrace) ([][]uint32, []uint64, error) {
	if q.NumVertices() == 0 {
		return nil, nil, fmt.Errorf("filter: empty query graph")
	}
	if !q.IsConnected() {
		return nil, nil, fmt.Errorf("filter: query graph must be connected")
	}
	if workers < 1 {
		workers = 1
	}
	tally := make([]uint64, workers)
	start := time.Now()
	switch m {
	case LDF:
		s := newState(q, g)
		s.generateParallel(workers, tally, nil, func(sc *scratch, u graph.Vertex, v uint32) bool {
			return s.g.Degree(v) >= s.q.Degree(u)
		})
		tr.add("ldf", start, s.cand)
		return s.result(), tally, nil
	case NLF:
		s := newState(q, g)
		s.generateParallel(workers, tally, nil, func(sc *scratch, u graph.Vertex, v uint32) bool {
			return s.g.Degree(v) >= s.q.Degree(u) && s.nlfOKWith(sc.counter, u, v)
		})
		tr.add("nlf", start, s.cand)
		return s.result(), tally, nil
	case GQL:
		return runGraphQLRadiusParallel(q, g, DefaultGQLRounds, 1, workers, tally, tr), tally, nil
	case DPIso:
		return runDPIsoParallel(q, g, DefaultDPIsoPasses, workers, tally, tr), tally, nil
	case Steady:
		return runSteadyParallel(q, g, workers, tally, tr), tally, nil
	case CFL:
		return runCFLParallel(q, g, CFLRootWorkers(q, g, workers), workers, tally, tr), tally, nil
	case CECI:
		return runCECIParallel(q, g, CECIRootWorkers(q, g, workers), workers, tally, tr), tally, nil
	default:
		return nil, nil, fmt.Errorf("filter: unknown method %v", m)
	}
}

// RunGraphQLParallel is RunGraphQL with the local pruning fanned out
// per query vertex and the global refinement run in frontier-based
// Jacobi rounds across `workers` goroutines.
func RunGraphQLParallel(q, g *graph.Graph, rounds, workers int) [][]uint32 {
	return RunGraphQLRadiusParallel(q, g, rounds, 1, workers)
}

// RunGraphQLRadiusParallel is the parallel form of RunGraphQLRadius.
// The output is identical for every workers value; relative to the
// sequential (Gauss–Seidel) refinement each bounded round keeps a
// superset, with equality at the fix point.
func RunGraphQLRadiusParallel(q, g *graph.Graph, rounds, radius, workers int) [][]uint32 {
	cand, _ := RunGraphQLRadiusParallelStats(q, g, rounds, radius, workers, nil)
	return cand
}

// RunGraphQLRadiusParallelStats is RunGraphQLRadiusParallel returning
// also the per-worker work tallies and recording trace stages ("local",
// then one "refine-<k>" per Jacobi round) into tr (may be nil).
func RunGraphQLRadiusParallelStats(q, g *graph.Graph, rounds, radius, workers int, tr *StageTrace) ([][]uint32, []uint64) {
	if workers < 1 {
		workers = 1
	}
	tally := make([]uint64, workers)
	return runGraphQLRadiusParallel(q, g, rounds, radius, workers, tally, tr), tally
}

func runGraphQLRadiusParallel(q, g *graph.Graph, rounds, radius, workers int, tally []uint64, tr *StageTrace) [][]uint32 {
	start := time.Now()
	s := newState(q, g)
	if radius <= 1 {
		s.generateParallel(workers, tally, nil, func(sc *scratch, u graph.Vertex, v uint32) bool {
			return s.g.Degree(v) >= s.q.Degree(u) && s.nlfOKWith(sc.counter, u, v)
		})
	} else {
		s.generateParallel(workers, tally, &radius, func(sc *scratch, u graph.Vertex, v uint32) bool {
			if s.g.Degree(v) < s.q.Degree(u) {
				return false
			}
			return sc.gProf.covers(s.g, v, sc.want)
		})
	}
	for u := 0; u < q.NumVertices(); u++ {
		s.rebuildMember(graph.Vertex(u))
	}
	tr.add("local", start, s.cand)
	s.refineJacobi(rounds, workers, tally, tr, "refine-%d", func(sc *scratch, u graph.Vertex, qn []graph.Vertex, v uint32) bool {
		return s.semiPerfect(sc.matcher, qn, v)
	})
	return s.result()
}

// RunDPIsoParallel is the parallel form of RunDPIso: the LDF
// initialization (the per-candidate scan that dominates DP-iso's filter
// time) fans out per query vertex, and the root is chosen from the
// already-computed candidate sizes — the same argmin DPIsoRoot
// computes, without scanning the pools a second time. The alternating
// refinement sweeps are order-dependent and stay sequential, so the
// output is byte-identical to RunDPIso for every workers value.
func RunDPIsoParallel(q, g *graph.Graph, passes, workers int) [][]uint32 {
	cand, _ := RunDPIsoParallelStats(q, g, passes, workers, nil)
	return cand
}

// RunDPIsoParallelStats is RunDPIsoParallel returning also the
// per-worker work tallies and recording trace stages ("init", then one
// "pass-<k>" per sweep) into tr (may be nil).
func RunDPIsoParallelStats(q, g *graph.Graph, passes, workers int, tr *StageTrace) ([][]uint32, []uint64) {
	if workers < 1 {
		workers = 1
	}
	tally := make([]uint64, workers)
	return runDPIsoParallel(q, g, passes, workers, tally, tr), tally
}

func runDPIsoParallel(q, g *graph.Graph, passes, workers int, tally []uint64, tr *StageTrace) [][]uint32 {
	start := time.Now()
	s := newState(q, g)
	s.generateParallel(workers, tally, nil, func(sc *scratch, u graph.Vertex, v uint32) bool {
		return s.g.Degree(v) >= s.q.Degree(u)
	})
	// DPIsoRoot's rule on the sets just built: argmin |C_LDF(u)| / d(u),
	// first minimum wins.
	root := graph.Vertex(0)
	bestScore := -1.0
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.Vertex(u)
		score := float64(len(s.cand[u])) / float64(q.Degree(uu))
		if bestScore < 0 || score < bestScore {
			root, bestScore = uu, score
		}
	}
	for u := 0; u < q.NumVertices(); u++ {
		s.rebuildMember(graph.Vertex(u))
	}
	tr.add("init", start, s.cand)
	s.dpisoPassesTraced(graph.NewBFSTree(q, root), passes, tr)
	return s.result()
}

// RunSteadyParallel is the parallel form of RunSteady: NLF generation
// fans out per query vertex and Filtering Rule 3.1 is iterated in
// Jacobi rounds to the fix point. The fix point of the rule is the
// unique maximal mutually-consistent candidate family regardless of
// removal order, so the output is byte-identical to RunSteady.
func RunSteadyParallel(q, g *graph.Graph, workers int) [][]uint32 {
	if workers < 1 {
		workers = 1
	}
	return runSteadyParallel(q, g, workers, make([]uint64, workers), nil)
}

func runSteadyParallel(q, g *graph.Graph, workers int, tally []uint64, tr *StageTrace) [][]uint32 {
	start := time.Now()
	s := newState(q, g)
	s.generateParallel(workers, tally, nil, func(sc *scratch, u graph.Vertex, v uint32) bool {
		return s.g.Degree(v) >= s.q.Degree(u) && s.nlfOKWith(sc.counter, u, v)
	})
	for u := 0; u < q.NumVertices(); u++ {
		s.rebuildMember(graph.Vertex(u))
	}
	s.refineJacobi(math.MaxInt, workers, tally, nil, "", func(sc *scratch, u graph.Vertex, qn []graph.Vertex, v uint32) bool {
		for _, up := range qn {
			if !s.hasNeighborIn(v, up) {
				return false
			}
		}
		return true
	})
	// The sequential RunSteady records one "fixpoint" stage; the Jacobi
	// rounds converge to the same fix point, so one stage matches.
	tr.add("fixpoint", start, s.cand)
	return s.result()
}

// rebuildMember resyncs u's membership bitmap with cand[u].
func (s *state) rebuildMember(u graph.Vertex) {
	s.member[u].Reset()
	for _, v := range s.cand[u] {
		s.member[u].Set(v)
	}
}

type genTask struct {
	u      graph.Vertex
	lo, hi int // chunk of the label pool of u
}

// generateParallel fills s.cand[u] for every query vertex by scanning
// VerticesWithLabel(L(u)) in chunks with pred, stitching the per-chunk
// survivors back in chunk order (pools are sorted, so the concatenation
// is the sorted candidate set). Membership bitmaps are not touched;
// callers that need them run rebuildMember afterwards. radius, when
// non-nil and > 1, equips each worker with profilers and each task with
// the query profile of its vertex (sc.want).
func (s *state) generateParallel(workers int, tally []uint64, radius *int, pred func(sc *scratch, u graph.Vertex, v uint32) bool) {
	q, g := s.q, s.g
	var tasks []genTask
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.Vertex(u)
		pool := len(g.VerticesWithLabel(q.Label(uu)))
		for lo := 0; lo < pool; lo += genChunk {
			hi := lo + genChunk
			if hi > pool {
				hi = pool
			}
			tasks = append(tasks, genTask{u: uu, lo: lo, hi: hi})
		}
		if pool == 0 {
			s.cand[u] = nil
		}
	}
	r := 1
	if radius != nil {
		r = *radius
	}
	scratches := s.newScratches(workers, r)
	outs := make([][]uint32, len(tasks))
	work := par.Run(workers, len(tasks), func(w, t int) uint64 {
		sc, task := scratches[w], tasks[t]
		if sc.qProf != nil {
			sc.want = sc.qProf.profile(q, task.u)
		}
		pool := g.VerticesWithLabel(q.Label(task.u))[task.lo:task.hi]
		var out []uint32
		for _, v := range pool {
			if pred(sc, task.u, v) {
				out = append(out, v)
			}
		}
		outs[t] = out
		return uint64(task.hi - task.lo)
	})
	par.Accumulate(tally, work)
	// Stitch: tasks were emitted per u in ascending chunk order.
	for t := 0; t < len(tasks); {
		u := tasks[t].u
		var cand []uint32
		for ; t < len(tasks) && tasks[t].u == u; t++ {
			cand = append(cand, outs[t]...)
		}
		s.cand[u] = cand
	}
}

type refineTask struct {
	u      graph.Vertex
	lo, hi int // chunk of cand[u]
}

// refineJacobi iterates `rounds` Jacobi refinement rounds (or until no
// candidate is removed) with the per-candidate survival check `keep`.
// Within a round every check reads the immutable previous-round
// snapshot — candidate membership bitmaps are only mutated at the
// inter-round barrier — so the survivor sets are independent of worker
// count and task order. Rounds re-check only the frontier: query
// vertices with at least one neighbor that lost candidates in the
// previous round. When stageFmt is non-empty, each round closes one
// trace stage named fmt.Sprintf(stageFmt, round+1) on tr.
func (s *state) refineJacobi(rounds, workers int, tally []uint64, tr *StageTrace, stageFmt string, keep func(sc *scratch, u graph.Vertex, qn []graph.Vertex, v uint32) bool) {
	stageStart := time.Now()
	q := s.q
	n := q.NumVertices()
	scratches := s.newScratches(workers, 1)
	dirty := make([]bool, n)
	for u := range dirty {
		dirty[u] = true
	}
	var tasks []refineTask
	for round := 0; round < rounds; round++ {
		tasks = tasks[:0]
		for u := 0; u < n; u++ {
			if !dirty[u] {
				continue
			}
			for lo := 0; lo < len(s.cand[u]); lo += refineChunk {
				hi := lo + refineChunk
				if hi > len(s.cand[u]) {
					hi = len(s.cand[u])
				}
				tasks = append(tasks, refineTask{u: graph.Vertex(u), lo: lo, hi: hi})
			}
		}
		if len(tasks) == 0 {
			break
		}
		kept := make([][]uint32, len(tasks))
		removed := make([][]uint32, len(tasks))
		work := par.Run(workers, len(tasks), func(w, t int) uint64 {
			sc, task := scratches[w], tasks[t]
			qn := q.Neighbors(task.u)
			var k, r []uint32
			for _, v := range s.cand[task.u][task.lo:task.hi] {
				if keep(sc, task.u, qn, v) {
					k = append(k, v)
				} else {
					r = append(r, v)
				}
			}
			kept[t], removed[t] = k, r
			return uint64(task.hi - task.lo)
		})
		par.Accumulate(tally, work)

		// Barrier: apply the removals and compute the next frontier.
		shrunk := make([]bool, n)
		for t := 0; t < len(tasks); {
			u := tasks[t].u
			newCand := s.cand[u][:0]
			for ; t < len(tasks) && tasks[t].u == u; t++ {
				newCand = append(newCand, kept[t]...)
				for _, v := range removed[t] {
					s.member[u].Clear(v)
					shrunk[u] = true
				}
			}
			s.cand[u] = newCand
		}
		changed := false
		for u := 0; u < n; u++ {
			dirty[u] = false
			for _, un := range q.Neighbors(graph.Vertex(u)) {
				if shrunk[un] {
					dirty[u] = true
					changed = true
					break
				}
			}
		}
		if stageFmt != "" {
			stageStart = tr.add(fmt.Sprintf(stageFmt, round+1), stageStart, s.cand)
		}
		if !changed {
			break
		}
	}
}
