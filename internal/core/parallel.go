package core

import (
	"sync"
	"sync/atomic"
	"time"

	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/enumerate"
	"subgraphmatching/internal/graph"
)

// Parallel enumeration. Each worker owns one reusable enumerate.Engine
// over the shared (read-only) candidate sets and auxiliary structure, so
// per-task scratch is allocated once per worker, not per subtree. The
// search space is divided into task units — root candidates, or (root,
// second) pairs when the root's candidate list is small enough to make
// splitting worthwhile — and distributed by the scheduler selected in
// Limits.Schedule: dynamic work stealing (default) or the static strided
// partition the paper mentions for CECI's multi-threaded execution.
//
// The embedding cap is enforced with a shared CAS loop: a worker
// reserves a sequence number only while the count is below the cap, so
// the reported count is exact under contention — no transient
// over-count, no undo.

// matchParallel runs the enumeration step across `workers` goroutines.
// cand, space, phi and weights are read-only from here on.
func matchParallel(q, g *graph.Graph, cand [][]uint32, space *candspace.Space,
	phi []graph.Vertex, weights [][]float64, cfg Config, limits Limits,
	workers int, res *Result) error {

	root := phi[0]
	rootCands := cand[root]
	if workers < 1 {
		workers = 1
	}

	var (
		accepted  atomic.Uint64
		timedOut  atomic.Bool
		limitHit  atomic.Bool
		matchLock sync.Mutex
	)
	// The caller's cancel flag, when supplied, doubles as the shared stop
	// signal: an external store(true) halts every worker at its next
	// poll, and internal stop causes (cap reached, OnMatch abort) store
	// into the same flag — which is why Limits.Cancel is documented as
	// per-run.
	stop := limits.Cancel
	if stop == nil {
		stop = new(atomic.Bool)
	}

	// acceptMatch reserves an exact sequence number for one embedding.
	// The CAS loop never lets the counter pass the cap, so the final
	// count needs no clamping and the cap race is deterministic.
	acceptMatch := func() (uint64, bool) {
		if limits.MaxEmbeddings == 0 {
			return accepted.Add(1), true
		}
		for {
			cur := accepted.Load()
			if cur >= limits.MaxEmbeddings {
				limitHit.Store(true)
				stop.Store(true)
				return 0, false
			}
			if accepted.CompareAndSwap(cur, cur+1) {
				return cur + 1, true
			}
		}
	}

	// With no cap and no user callback there is nothing to coordinate
	// per embedding: every engine already counts its own matches, and a
	// shared atomic bumped tens of millions of times would serialize the
	// workers on one cache line. Keep the per-match hook nil and sum the
	// per-engine counts after the join.
	countLocally := limits.MaxEmbeddings == 0 && limits.OnMatch == nil

	onMatch := func(m []uint32) bool {
		if stop.Load() {
			return false
		}
		n, ok := acceptMatch()
		if !ok {
			return false
		}
		if limits.OnMatch != nil {
			// The engine reuses its embedding slice for the rest of the
			// search; hand the callback a private copy so stored matches
			// are not silently overwritten (FindAll-style collectors).
			mc := append(make([]uint32, 0, len(m)), m...)
			matchLock.Lock()
			cont := limits.OnMatch(mc)
			matchLock.Unlock()
			if !cont {
				stop.Store(true)
				return false
			}
		}
		if limits.MaxEmbeddings > 0 && n == limits.MaxEmbeddings {
			limitHit.Store(true)
			stop.Store(true)
			return false
		}
		return true
	}

	profile := cfg.Profile || limits.Profile
	opts := enumerate.Options{
		Local:           cfg.Local,
		Kernel:          cfg.Kernel,
		FailingSets:     cfg.FailingSets,
		Adaptive:        cfg.Adaptive,
		AdaptiveWeights: weights,
		VF2PPRules:      cfg.VF2PPRules,
		Profile:         profile,
		Cancel:          stop,
	}
	if !countLocally {
		opts.OnMatch = onMatch
	}

	// The deadline is armed before any search work — including the
	// splitter's probe expansions, which previously ran unbounded and
	// uncancellable ahead of SetDeadline.
	start := time.Now()
	var deadline time.Time
	if limits.TimeLimit > 0 {
		deadline = start.Add(limits.TimeLimit)
	}

	// Build the task pool. Root-only tasks are the coarse default; when
	// the root has few candidates relative to the worker count (the
	// regime where one heavy root serializes a static partition), a probe
	// engine refines them: the static policy expands every root into all
	// its depth-1 (root, second) pairs, the cost-model policy (the
	// default) sizes tasks by estimated subtree weight and splits
	// recursively — below depth 1 over static orders, and on the
	// runtime-chosen second vertex in adaptive mode. The probe shares the
	// run's stop flag and deadline, and its work (expansions, candidates,
	// kernels) is tallied into SplitInfo and folded into the Result so
	// profile reconciliation stays exact.
	splitFactor := limits.SplitFactor
	if splitFactor == 0 {
		splitFactor = DefaultSplitFactor
	}
	info := &SplitInfo{Policy: limits.Split}
	var tasks []enumTask
	splitRegime := limits.Schedule == ScheduleWorkSteal &&
		q.NumVertices() >= 2 && len(rootCands) < workers*splitFactor &&
		!(cfg.Adaptive && limits.Split == SplitStatic)
	var probeTimedOut bool
	if splitRegime {
		probe, err := enumerate.NewEngine(q, g, cand, space, phi, enumerate.Options{
			Local:           cfg.Local,
			Kernel:          cfg.Kernel,
			Adaptive:        cfg.Adaptive,
			AdaptiveWeights: weights,
			VF2PPRules:      cfg.VF2PPRules,
			Cancel:          stop,
		})
		if err != nil {
			return err
		}
		probe.SetDeadline(deadline)
		switch {
		case limits.Split == SplitStatic:
			tasks = buildStaticTasks(probe, rootCands, info)
		case cfg.Adaptive:
			est := newSplitEstimator(q, g, cand, space, phi)
			tasks = buildAdaptiveCostTasks(probe, rootCands, est, workers, info)
		default:
			est := newSplitEstimator(q, g, cand, space, phi)
			tasks = buildCostModelTasks(probe, rootCands, est, q.NumVertices(), workers, info)
		}
		finishSplitInfo(info, tasks, probe)
		probeTimedOut = probe.Stats().TimedOut
	} else {
		tasks = make([]enumTask, len(rootCands))
		for i, v := range rootCands {
			tasks[i] = enumTask{root: v, second: noSecond}
		}
		info.Tasks = len(tasks)
		info.MaxPrefix = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}

	engines := make([]*enumerate.Engine, workers)
	for w := range engines {
		eng, err := enumerate.NewEngine(q, g, cand, space, phi, opts)
		if err != nil {
			return err
		}
		eng.SetDeadline(deadline)
		engines[w] = eng
	}

	// Per-worker scheduler tallies. Each goroutine accumulates into
	// locals and writes its own slice element once before exiting — no
	// shared atomics on the task loop.
	workerStats := make([]WorkerStats, workers)

	var wg sync.WaitGroup
	switch limits.Schedule {
	case ScheduleStrided:
		// Static partition of the root's candidates; no rebalancing.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				eng := engines[w]
				var tasks uint64
				for i := w; i < len(rootCands); i += workers {
					// Task-granular cancellation: the engines poll the flag
					// only every few thousand nodes, so without this check a
					// cancel raced with task start would still enumerate a
					// subtree per worker.
					if stop.Load() {
						break
					}
					tasks++
					if !eng.RunRoot(rootCands[i]) {
						break
					}
				}
				workerStats[w].Tasks = tasks
			}(w)
		}
	default:
		// Work stealing: tasks are dealt round-robin so heavy neighbors
		// spread out, then idle workers rebalance by stealing half of a
		// victim's remaining deque.
		deques := make([]*taskDeque, workers)
		for w := range deques {
			deques[w] = &taskDeque{tasks: make([]enumTask, 0, len(tasks)/workers+1)}
		}
		for i, t := range tasks {
			d := deques[i%workers]
			d.tasks = append(d.tasks, t)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				eng, self := engines[w], deques[w]
				var tasks, steals, failed uint64
				defer func() {
					workerStats[w] = WorkerStats{Tasks: tasks, Steals: steals, FailedSteals: failed}
				}()
				for {
					// Task-granular cancellation (see the strided loop).
					if stop.Load() {
						return
					}
					t, ok := self.pop()
					if !ok {
						stolen, probes := stealInto(self, deques, w)
						failed += uint64(probes)
						if !stolen {
							return
						}
						steals++
						continue
					}
					tasks++
					var cont bool
					switch {
					case t.prefix != nil:
						cont = eng.RunPrefix(t.prefix)
					case t.second == noSecond:
						cont = eng.RunRoot(t.root)
					case cfg.Adaptive:
						cont = eng.RunAdaptivePair(t.root, t.second)
					default:
						cont = eng.RunRootPair(t.root, t.second)
					}
					if !cont {
						return
					}
				}
			}(w)
		}
	}
	wg.Wait()

	var mergedProf *enumerate.SearchProfile
	if profile {
		mergedProf = enumerate.NewSearchProfile(q.NumVertices())
		res.WorkerProfiles = make([]*enumerate.SearchProfile, len(engines))
	}
	var nodes, localEmb uint64
	workerNodes := make([]uint64, len(engines))
	for w, eng := range engines {
		st := eng.Stats()
		nodes += st.Nodes
		workerNodes[w] = st.Nodes
		workerStats[w].Nodes = st.Nodes
		localEmb += st.Embeddings
		res.Kernels.Add(st.Kernels)
		if st.TimedOut {
			timedOut.Store(true)
		}
		if mergedProf != nil {
			mergedProf.Merge(st.Profile)
			res.WorkerProfiles[w] = st.Profile
		}
	}

	if countLocally {
		res.Embeddings = localEmb
	} else {
		res.Embeddings = accepted.Load()
	}
	// Probe expansions are search work: each computed one local-candidate
	// set, exactly what a search node does. Folding them into Nodes and
	// Kernels (EXPLAIN carries them as the heat table's probe row) keeps
	// the totals honest once the splitter makes probing common.
	res.Nodes = nodes + info.Probes
	res.Kernels.Add(info.ProbeKernels)
	if probeTimedOut {
		timedOut.Store(true)
	}
	res.TimedOut = timedOut.Load()
	res.LimitHit = limitHit.Load()
	res.EnumTime = time.Since(start)
	res.Profile = mergedProf
	res.WorkerNodes = workerNodes
	res.Workers = workerStats
	res.Split = info
	return nil
}
