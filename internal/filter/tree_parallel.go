package filter

import (
	"sort"
	"time"

	"subgraphmatching/internal/bitset"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/par"
)

// Parallel CFL and CECI filtering. Both methods advance a BFS tree of
// the query: generating C(u) from C(parent) (Generation Rule 3.1) and
// pruning pairs of already-built sets against each other (Filtering
// Rule 3.1). Unlike GQL's global refinement, their pruning is a fixed
// single-pass sequence, not an iteration to a fix point — so a Jacobi
// relaxation would change the output (an intra-level backward prune
// that sequential code applies before generating the next sibling
// would be deferred past it). To stay byte-identical to the sequential
// runners at every worker count, the parallel runners replay the exact
// sequential operation sequence and extract parallelism on two axes:
//
//   - within one operation, the candidate scan is chunked across
//     workers (generation scans C(parent) in chunks, pruning checks
//     C(u) in chunks), exactly like package par's other users;
//   - consecutive operations that touch disjoint state are packed into
//     one "wave" and fan out together. Within a wave every task reads
//     state frozen at the wave boundary; writes are applied in
//     operation order at the post-wave barrier. An operation that
//     reads state an earlier wave member writes starts the next wave,
//     so each operation still observes exactly what the sequential
//     run would have. Consecutive prunes of one target fuse into one
//     multi-source prune (sequential composition of prunes on a fixed
//     target is the conjunction of their checks — the sources' sets
//     are untouched by prunes of the target).
//
// One BFS level's generations read only the previous level's sets, so
// levels become waves naturally: the packing is the "level-synchronous
// frontier fan-out" with the sequential backward-prune barriers made
// explicit.

// treeChunk is the number of candidates (parent candidates for
// generation, own candidates for pruning) one tree-filter task
// handles. Tree waves are smaller than the global label-pool scans of
// generateParallel, so the chunk is finer than genChunk to keep enough
// tasks in flight per wave.
const treeChunk = 64

// treeScratch is one worker's private state for the tree filters: a
// dedup bitset for generation chunks (tasks undo only the bits they
// set — a full Reset is O(|V(G)|/64) and would dominate small chunks)
// and an NLF label counter.
type treeScratch struct {
	seen    *bitset.Set
	counter *graph.LabelCounter
}

func (s *state) newTreeFrontier(workers int) *par.Frontier[*treeScratch] {
	maxLabel := graph.MaxLabelOf(s.q, s.g)
	return par.NewFrontier(workers, func(int) *treeScratch {
		return &treeScratch{
			seen:    bitset.New(s.g.NumVertices()),
			counter: graph.NewLabelCounter(maxLabel),
		}
	})
}

// treeOp is one step of the sequential tree-filter sequence. gen=true
// overwrites C(u) by Generation Rule 3.1 from C(src[0]) (src empty:
// the root's LDF+NLF label-pool scan); gen=false prunes C(u) by
// Filtering Rule 3.1 against every source in src.
type treeOp struct {
	gen bool
	u   graph.Vertex
	src []graph.Vertex
}

// runTreeOps executes the operation sequence with wave packing. Writer
// tracking is all it needs: an operation joins the current wave unless
// it reads or writes a vertex's candidate state that an earlier wave
// member writes (reads of unwritten state are free — they see the
// frozen wave snapshot, which is exactly the pre-operation state the
// sequential run would read).
func (s *state) runTreeOps(ops []treeOp, fr *par.Frontier[*treeScratch]) {
	const (
		wroteGen = 1 + iota
		wrotePrune
	)
	written := make(map[graph.Vertex]uint8)
	pruneAt := make(map[graph.Vertex]int) // wave index of a prune on the vertex
	var wave []treeOp

	flush := func() {
		if len(wave) > 0 {
			s.runTreeWave(wave, fr)
			wave = wave[:0]
		}
		clear(written)
		clear(pruneAt)
	}

	for _, op := range ops {
		conflict := false
		for _, p := range op.src {
			if written[p] != 0 { // RAW on a source's candidates
				conflict = true
				break
			}
		}
		if op.gen {
			// gen replaces C(u) wholesale; it cannot share a wave with
			// any other writer of u.
			if conflict || written[op.u] != 0 {
				flush()
			}
			wave = append(wave, op)
			written[op.u] = wroteGen
			continue
		}
		// A prune reads C(u) as of the wave snapshot; that is only the
		// state the sequential run reads if u was not generated within
		// this wave. A same-wave prune of u fuses instead.
		if conflict || written[op.u] == wroteGen {
			flush()
		}
		if i, ok := pruneAt[op.u]; ok {
			wave[i].src = append(append([]graph.Vertex(nil), wave[i].src...), op.src...)
			continue
		}
		pruneAt[op.u] = len(wave)
		wave = append(wave, op)
		written[op.u] = wrotePrune
	}
	flush()
}

// treeTask is one chunk of one wave operation.
type treeTask struct {
	op     int
	lo, hi int
}

// runTreeWave fans one wave's operations out in treeChunk-sized tasks
// and applies all writes at the barrier, in operation order. Tasks
// read only candidate state as of wave entry (cand slices and member
// bitmaps are mutated exclusively here, after the Wave call returns),
// so chunk outputs are independent of worker count and task order.
func (s *state) runTreeWave(wave []treeOp, fr *par.Frontier[*treeScratch]) {
	var tasks []treeTask
	for i, op := range wave {
		var n int
		switch {
		case !op.gen:
			n = len(s.cand[op.u])
		case len(op.src) == 0:
			n = len(s.g.VerticesWithLabel(s.q.Label(op.u)))
		default:
			n = len(s.cand[op.src[0]])
		}
		for lo := 0; lo < n; lo += treeChunk {
			hi := lo + treeChunk
			if hi > n {
				hi = n
			}
			tasks = append(tasks, treeTask{op: i, lo: lo, hi: hi})
		}
	}
	outs := make([][]uint32, len(tasks))    // gen survivors / prune kept
	removed := make([][]uint32, len(tasks)) // prune removals
	fr.Wave(len(tasks), func(sc *treeScratch, t int) uint64 {
		task := tasks[t]
		op := wave[task.op]
		if op.gen {
			outs[t] = s.genChunk(sc, op, task.lo, task.hi)
		} else {
			outs[t], removed[t] = s.pruneChunk(op, task.lo, task.hi)
		}
		return uint64(task.hi - task.lo)
	})

	// Barrier: apply in operation order. Tasks were emitted per op in
	// ascending chunk order, so stitching concatenates chunk outputs.
	t := 0
	for i, op := range wave {
		if op.gen {
			var merged []uint32
			for ; t < len(tasks) && tasks[t].op == i; t++ {
				merged = append(merged, outs[t]...)
			}
			if len(op.src) != 0 && len(merged) > 0 {
				// Chunks dedup locally (per-worker seen bitset); distinct
				// chunks of C(parent) can still reach the same data
				// vertex. The sorted union is the sequential output.
				sort.Slice(merged, func(a, b int) bool { return merged[a] < merged[b] })
				merged = dedupSorted(merged)
			}
			s.setCandidates(op.u, merged)
			continue
		}
		newCand := s.cand[op.u][:0]
		for ; t < len(tasks) && tasks[t].op == i; t++ {
			newCand = append(newCand, outs[t]...)
			for _, v := range removed[t] {
				s.member[op.u].Clear(v)
			}
		}
		s.cand[op.u] = newCand
	}
}

// genChunk runs one generation task: Generation Rule 3.1 over a chunk
// of C(parent) (or, for the root op, the LDF+NLF predicate over a
// chunk of the root's label pool — nlfCandidates, chunked). The seen
// bitset dedups within the chunk; only the accepted vertices were
// marked, so clearing them restores the scratch for the next task.
func (s *state) genChunk(sc *treeScratch, op treeOp, lo, hi int) []uint32 {
	u := op.u
	var out []uint32
	if len(op.src) == 0 {
		for _, v := range s.g.VerticesWithLabel(s.q.Label(u))[lo:hi] {
			if s.g.Degree(v) >= s.q.Degree(u) && s.nlfOKWith(sc.counter, u, v) {
				out = append(out, v)
			}
		}
		return out
	}
	for _, vp := range s.cand[op.src[0]][lo:hi] {
		for _, v := range s.g.Neighbors(vp) {
			if !sc.seen.Contains(v) && s.ldfOK(u, v) && s.nlfOKWith(sc.counter, u, v) {
				sc.seen.Set(v)
				out = append(out, v)
			}
		}
	}
	for _, v := range out {
		sc.seen.Clear(v)
	}
	return out
}

// pruneChunk runs one pruning task: Filtering Rule 3.1 over a chunk of
// C(u), against every source of a (possibly fused) prune op.
func (s *state) pruneChunk(op treeOp, lo, hi int) (kept, removed []uint32) {
	for _, v := range s.cand[op.u][lo:hi] {
		ok := true
		for _, up := range op.src {
			if !s.hasNeighborIn(v, up) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, v)
		} else {
			removed = append(removed, v)
		}
	}
	return kept, removed
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(v []uint32) []uint32 {
	out := v[:1]
	for _, x := range v[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// runCFLParallel is runCFLFrom with the operation sequence
// wave-scheduled across workers. Output is byte-identical to the
// sequential run for every worker count.
func runCFLParallel(q, g *graph.Graph, root graph.Vertex, workers int, tally []uint64, tr *StageTrace) [][]uint32 {
	stageStart := time.Now()
	t := graph.NewBFSTree(q, root)
	s := newState(q, g)
	fr := s.newTreeFrontier(workers)

	// Phase 1: top-down generation with backward pruning — the op
	// sequence of runCFLFrom's first loop.
	var ops []treeOp
	visited := make([]bool, q.NumVertices())
	for _, u := range t.Order {
		if u == root {
			ops = append(ops, treeOp{gen: true, u: u})
		} else {
			ops = append(ops, treeOp{gen: true, u: u, src: []graph.Vertex{t.Parent[u]}})
			for _, un := range q.Neighbors(u) {
				if visited[un] && un != t.Parent[u] {
					ops = append(ops,
						treeOp{u: u, src: []graph.Vertex{un}},
						treeOp{u: un, src: []graph.Vertex{u}})
				}
			}
		}
		visited[u] = true
	}
	s.runTreeOps(ops, fr)
	stageStart = tr.add("generate", stageStart, s.cand)

	// Phase 2: bottom-up refinement. Each vertex's prunes against its
	// deeper neighbors fuse into one op; a level only reads strictly
	// deeper (earlier-refined) sets, so each level is one wave.
	ops = ops[:0]
	for i := len(t.Order) - 1; i >= 0; i-- {
		u := t.Order[i]
		var deeper []graph.Vertex
		for _, un := range q.Neighbors(u) {
			if t.Depth[un] > t.Depth[u] {
				deeper = append(deeper, un)
			}
		}
		if len(deeper) > 0 {
			ops = append(ops, treeOp{u: u, src: deeper})
		}
	}
	s.runTreeOps(ops, fr)
	tr.add("refine", stageStart, s.cand)
	par.Accumulate(tally, fr.Tally())
	return s.result()
}

// runCECIParallel is runCECIFrom with the operation sequence
// wave-scheduled across workers. Output is byte-identical to the
// sequential run for every worker count.
func runCECIParallel(q, g *graph.Graph, root graph.Vertex, workers int, tally []uint64, tr *StageTrace) [][]uint32 {
	stageStart := time.Now()
	t := graph.NewBFSTree(q, root)
	s := newState(q, g)
	fr := s.newTreeFrontier(workers)
	pos := make([]int, q.NumVertices())
	for i, u := range t.Order {
		pos[u] = i
	}

	// Phase 1: construction along δ with symmetric backward pruning.
	var ops []treeOp
	for i, u := range t.Order {
		if i == 0 {
			ops = append(ops, treeOp{gen: true, u: u})
			continue
		}
		p := t.Parent[u]
		ops = append(ops,
			treeOp{gen: true, u: u, src: []graph.Vertex{p}},
			treeOp{u: p, src: []graph.Vertex{u}})
		for _, un := range q.Neighbors(u) {
			if pos[un] < i && un != p { // backward non-tree edge
				ops = append(ops,
					treeOp{u: u, src: []graph.Vertex{un}},
					treeOp{u: un, src: []graph.Vertex{u}})
			}
		}
	}
	s.runTreeOps(ops, fr)
	stageStart = tr.add("construct", stageStart, s.cand)

	// Phase 2: reverse-δ refinement against tree children only.
	ops = ops[:0]
	children := t.Children()
	for i := len(t.Order) - 1; i >= 0; i-- {
		u := t.Order[i]
		if len(children[u]) > 0 {
			ops = append(ops, treeOp{u: u, src: children[u]})
		}
	}
	s.runTreeOps(ops, fr)
	tr.add("refine", stageStart, s.cand)
	par.Accumulate(tally, fr.Tally())
	return s.result()
}
