package filter

import (
	"time"

	"subgraphmatching/internal/bitset"
	"subgraphmatching/internal/graph"
)

// RunCFL implements CFL's filtering (paper Section 3.1.1, Example 3.2):
//
//  1. Generation, top-down along a BFS tree q_t of q: C(u) is generated
//     from C(u.p) with Generation Rule 3.1 (each candidate must also pass
//     LDF and NLF), then pruned bidirectionally against every
//     already-generated neighbor via non-tree edges (Filtering Rule 3.1).
//  2. Refinement, bottom-up: C(u) is pruned against every neighbor at a
//     deeper BFS level.
//
// The compressed path index itself (edges between candidates of tree
// edges) is materialized separately by candspace.BuildTree.
func RunCFL(q, g *graph.Graph) [][]uint32 {
	root := CFLRoot(q, g)
	return runCFLFrom(q, g, root, nil)
}

// runCFLFrom optionally records the two phases as trace stages:
// "generate" (top-down with backward pruning) and "refine" (bottom-up).
func runCFLFrom(q, g *graph.Graph, root graph.Vertex, tr *StageTrace) [][]uint32 {
	stageStart := time.Now()
	t := graph.NewBFSTree(q, root)
	s := newState(q, g)
	seen := bitset.New(g.NumVertices())
	visited := make([]bool, q.NumVertices())

	// Phase 1: top-down generation with backward pruning.
	for _, u := range t.Order {
		if u == root {
			s.setCandidates(u, s.nlfCandidates(u))
		} else {
			s.generateFromParent(u, t.Parent[u], seen)
			for _, un := range q.Neighbors(u) {
				if visited[un] && un != t.Parent[u] {
					s.prune(u, un)
					s.prune(un, u)
				}
			}
		}
		visited[u] = true
	}
	stageStart = tr.add("generate", stageStart, s.cand)

	// Phase 2: bottom-up refinement against deeper neighbors.
	for i := len(t.Order) - 1; i >= 0; i-- {
		u := t.Order[i]
		for _, un := range q.Neighbors(u) {
			if t.Depth[un] > t.Depth[u] {
				s.prune(u, un)
			}
		}
	}
	tr.add("refine", stageStart, s.cand)
	return s.result()
}
