package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"subgraphmatching/internal/graph"
)

// errMMapUnsupported makes the fallback path explicit on platforms
// without an mmap implementation.
var errMMapUnsupported = errors.New("store: mmap not supported on this platform")

// Snapshot is an opened snapshot file: the decoded graph, its
// trailer fingerprint, and — for mmap loads — the mapping keeping the
// graph's CSR slices valid.
type Snapshot struct {
	Graph       *graph.Graph
	Fingerprint graph.Fingerprint
	// Size is the snapshot file size in bytes.
	Size int64
	// MMapped reports that Graph's CSR slices alias a read-only file
	// mapping. Close unmaps it; the graph must not be used afterwards.
	MMapped bool
	mapped  []byte
}

// Close releases the file mapping, if any. The snapshot's graph (and
// any plan built over it) must no longer be in use — in smatchd this
// runs only at daemon shutdown.
func (s *Snapshot) Close() error {
	if s.mapped == nil {
		return nil
	}
	b := s.mapped
	s.mapped = nil
	return munmap(b)
}

// LoadOptions control OpenSnapshot.
type LoadOptions struct {
	// MMap maps the file and aliases the CSR sections zero-copy instead
	// of copying them onto the heap. Integrity is verified either way
	// (the CRC pass streams the pages once); the mapping keeps the
	// adjacency out of the Go heap and evictable under memory pressure.
	// On platforms without mmap support this silently degrades to the
	// copying load.
	MMap bool
	// VerifyFingerprint additionally recomputes the full sha256
	// fingerprint — see DecodeOptions.
	VerifyFingerprint bool
}

// OpenSnapshot opens and verifies a snapshot file.
func OpenSnapshot(path string, opts LoadOptions) (*Snapshot, error) {
	if opts.MMap && mmapSupported {
		return openMapped(path, opts)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// The freshly-read buffer is exclusively ours: aliasing it is safe
	// and skips a second copy of the adjacency.
	g, fp, err := Decode(data, DecodeOptions{ZeroCopy: true, VerifyFingerprint: opts.VerifyFingerprint})
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return &Snapshot{Graph: g, Fingerprint: fp, Size: int64(len(data))}, nil
}

func openMapped(path string, opts LoadOptions) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	data, err := mmapFile(f)
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	g, fp, err := Decode(data, DecodeOptions{ZeroCopy: true, VerifyFingerprint: opts.VerifyFingerprint})
	if err != nil {
		munmap(data)
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return &Snapshot{Graph: g, Fingerprint: fp, Size: int64(len(data)), MMapped: true, mapped: data}, nil
}

// WriteSnapshotFile atomically writes g's snapshot to path: encode,
// write to a temp file in the same directory, fsync, rename, fsync the
// directory. A crash at any point leaves either the old file or the
// complete new one — never a torn snapshot.
func WriteSnapshotFile(path string, g *graph.Graph) (graph.Fingerprint, int64, error) {
	data, fp, err := Encode(g)
	if err != nil {
		return fp, 0, err
	}
	if err := writeFileAtomic(path, data); err != nil {
		return fp, 0, err
	}
	return fp, int64(len(data)), nil
}

// writeFileAtomic is the temp+fsync+rename sequence shared by snapshot
// and manifest writes.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("store: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Errors are reported but non-fatal on filesystems that reject
// directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() // best-effort; some filesystems return EINVAL here
	return nil
}

// LoadGraphFile loads a graph from either format: snapshot files are
// recognized by magic, anything else parses as the t/v/e text format.
// Both CLIs use it so every -d / -graph flag transparently accepts
// snapshots.
func LoadGraphFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	var prefix [8]byte
	n, _ := io.ReadFull(f, prefix[:])
	f.Close()
	if SniffSnapshot(prefix[:n]) {
		snap, err := OpenSnapshot(path, LoadOptions{})
		if err != nil {
			return nil, err
		}
		return snap.Graph, nil
	}
	return graph.Load(path)
}
