package service

import (
	"sort"
	"time"
)

// latencySampleSize is how many recent request latencies each workload
// keeps for percentile estimation. A fixed ring bounds memory per
// workload; 512 samples put the p99 estimate within a handful of
// requests of the true tail at serving rates.
const latencySampleSize = 512

// latencyRing is a fixed-size ring of recent latencies. The workload
// counters themselves live on the obs registry (see serviceMetrics);
// the ring survives because exact p50/p99 over recent requests is a
// different quantity than a fixed-bucket histogram can provide, and the
// JSON /stats consumers rely on it.
type latencyRing struct {
	buf  [latencySampleSize]time.Duration
	n    int // total recorded (saturates the ring at len(buf))
	next int
}

func (r *latencyRing) add(d time.Duration) {
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// percentile returns the p-quantile (0 < p <= 1) of the retained
// samples, 0 when empty. Called under the metrics latency lock.
func (r *latencyRing) percentile(p float64) time.Duration {
	if r.n == 0 {
		return 0
	}
	tmp := make([]time.Duration, r.n)
	copy(tmp, r.buf[:r.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := int(p*float64(r.n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= r.n {
		idx = r.n - 1
	}
	return tmp[idx]
}

// WorkloadStats reports one (graph, algorithm) pair's counters. Latency
// percentiles cover the most recent latencySampleSize requests and
// include queue wait.
type WorkloadStats struct {
	Graph      string        `json:"graph"`
	Algorithm  string        `json:"algorithm"`
	Queries    uint64        `json:"queries"`
	CacheHits  uint64        `json:"cache_hits"`
	Timeouts   uint64        `json:"timeouts"`
	LimitHits  uint64        `json:"limit_hits"`
	Rejected   uint64        `json:"rejected"`
	Errors     uint64        `json:"errors"`
	Embeddings uint64        `json:"embeddings"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`
}

type statKey struct{ graph, algo string }

func sortWorkloads(out []WorkloadStats) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Graph != out[j].Graph {
			return out[i].Graph < out[j].Graph
		}
		return out[i].Algorithm < out[j].Algorithm
	})
}

// Stats is the full service snapshot smatchd serves on /stats.
type Stats struct {
	Uptime    time.Duration   `json:"uptime_ns"`
	Graphs    []GraphInfo     `json:"graphs"`
	Cache     CacheStats      `json:"cache"`
	Admission AdmissionStats  `json:"admission"`
	Workloads []WorkloadStats `json:"workloads"`
	// Kernels is the service-wide intersection-kernel mix: pairwise
	// kernel executions by kernel name across all completed requests
	// (the smatch_intersect_kernel_total families). Nil until an
	// intersection-based request completes.
	Kernels map[string]uint64 `json:"kernels,omitempty"`
	// Batches reports the batched-serving counters.
	Batches BatchStats `json:"batches"`
	// Inflight is the number of requests currently in flight, read from
	// the flight recorder's live registry — the same source as the
	// smatch_requests_inflight gauge.
	Inflight int `json:"inflight"`
	// DepthSamples counts the per-depth heat observations profiled
	// requests have recorded (the smatch_enum_depth_nodes histogram's
	// sample count).
	DepthSamples uint64 `json:"enum_depth_samples"`
}

// BatchStats reports SubmitBatch's amortization: Items - Groups is how
// many admission grants and plan lookups grouping saved, and Deduped
// how many items were served by fanning out an identical item's run.
type BatchStats struct {
	Batches uint64 `json:"batches"`
	Items   uint64 `json:"items"`
	Groups  uint64 `json:"groups"`
	Deduped uint64 `json:"deduped"`
}

// AdmissionStats reports the admission controller's occupancy.
type AdmissionStats struct {
	Capacity int64 `json:"capacity"`
	InUse    int64 `json:"in_use"`
	Queued   int   `json:"queued"`
}
