package filter

import (
	"fmt"
	"time"

	"subgraphmatching/internal/bipartite"
	"subgraphmatching/internal/graph"
)

// RunGraphQL implements GraphQL's two-step filtering (paper Section
// 3.1.1): local pruning by neighborhood profiles (r = 1) followed by
// `rounds` iterations of global refinement with the pseudo subgraph
// isomorphism test.
//
// With r = 1 the profile of u is the sorted label sequence of u and its
// neighbors; "profile of u is a subsequence of profile of v" is exactly
// multiset inclusion of the labels, i.e. the LDF+NLF condition, so local
// pruning reuses the NLF machinery.
//
// The global refinement checks Observation 3.2: v ∈ C(u) survives only if
// the bipartite graph between N(u) and N(v) — with an edge (u', v') iff
// v' ∈ C(u') — has a semi-perfect matching covering N(u). Removals take
// effect immediately, strengthening later checks within the same round.
func RunGraphQL(q, g *graph.Graph, rounds int) [][]uint32 {
	return RunGraphQLRadius(q, g, rounds, 1)
}

// RunGraphQLRadius is RunGraphQL with a configurable profile radius r
// (hops of neighbors considered in the local pruning). The original
// GraphQL exposes r to users; r = 1 is the common setting and reduces to
// the NLF check. Larger radii prune more at a cost of O(|N_r(v)|) per
// candidate: subgraph isomorphisms cannot stretch distances, so the
// label multiset within r hops of u must embed into that of v.
func RunGraphQLRadius(q, g *graph.Graph, rounds, radius int) [][]uint32 {
	return runGraphQLRadius(q, g, rounds, radius, nil)
}

// runGraphQLRadius is the implementation with optional stage tracing:
// one "local" stage for the profile-based pruning, then one
// "refine-<k>" stage per global-refinement round actually executed.
func runGraphQLRadius(q, g *graph.Graph, rounds, radius int, tr *StageTrace) [][]uint32 {
	start := time.Now()
	s := newState(q, g)
	if radius <= 1 {
		for u := 0; u < q.NumVertices(); u++ {
			s.setCandidates(graph.Vertex(u), s.nlfCandidates(graph.Vertex(u)))
		}
	} else {
		p := newProfiler(g, radius)
		qp := newProfiler(q, radius)
		for u := 0; u < q.NumVertices(); u++ {
			uu := graph.Vertex(u)
			want := qp.profile(q, uu)
			var out []uint32
			for _, v := range g.VerticesWithLabel(q.Label(uu)) {
				if g.Degree(v) < q.Degree(uu) {
					continue
				}
				if p.covers(g, v, want) {
					out = append(out, v)
				}
			}
			s.setCandidates(uu, out)
		}
	}

	start = tr.add("local", start, s.cand)

	matcher := bipartite.NewMatcher(q.MaxDegree())
	for round := 0; round < rounds; round++ {
		changed := false
		for u := 0; u < q.NumVertices(); u++ {
			uu := graph.Vertex(u)
			qn := q.Neighbors(uu)
			c := s.cand[u]
			kept := c[:0]
			for _, v := range c {
				if s.semiPerfect(matcher, qn, v) {
					kept = append(kept, v)
				} else {
					s.member[u].Clear(v)
					changed = true
				}
			}
			s.cand[u] = kept
		}
		start = tr.add(fmt.Sprintf("refine-%d", round+1), start, s.cand)
		if !changed {
			break
		}
	}
	return s.result()
}

// semiPerfect builds the bipartite graph between qn = N(u) and N(v) and
// tests whether every query neighbor can be matched to a distinct data
// neighbor that is one of its candidates.
func (s *state) semiPerfect(m *bipartite.Matcher, qn []graph.Vertex, v uint32) bool {
	m.Reset(len(qn))
	for i, up := range qn {
		mem := s.member[up]
		for _, w := range s.g.Neighbors(v) {
			if mem.Contains(w) {
				m.AddEdge(i, int32(w))
			}
		}
	}
	return m.HasSemiPerfectMatching(len(qn))
}
