package filter

import (
	"subgraphmatching/internal/graph"
)

// Root selection rules of the tree-based filters. Each is exported
// because the corresponding ordering methods (package order) must use the
// same deterministic root.

// CFLRoot picks CFL's start vertex: among the (up to) three core vertices
// with minimum label-frequency/degree ratio, the one with the smallest
// NLF candidate set. Queries without a 2-core fall back to all vertices.
func CFLRoot(q, g *graph.Graph) graph.Vertex {
	core := q.TwoCore()
	pool := make([]graph.Vertex, 0, q.NumVertices())
	for u := 0; u < q.NumVertices(); u++ {
		if core[u] {
			pool = append(pool, graph.Vertex(u))
		}
	}
	if len(pool) == 0 {
		for u := 0; u < q.NumVertices(); u++ {
			pool = append(pool, graph.Vertex(u))
		}
	}
	// Rank by |{v : L(v)=L(u)}| / d(u), keep the three smallest.
	rank := func(u graph.Vertex) float64 {
		return float64(g.LabelFrequency(q.Label(u))) / float64(q.Degree(u))
	}
	top := make([]graph.Vertex, 0, 3)
	for _, u := range pool {
		top = append(top, u)
		for i := len(top) - 1; i > 0 && rank(top[i]) < rank(top[i-1]); i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
		if len(top) > 3 {
			top = top[:3]
		}
	}
	s := newState(q, g)
	best := top[0]
	bestSize := -1
	for _, u := range top {
		size := len(s.nlfCandidates(u))
		if bestSize < 0 || size < bestSize {
			best, bestSize = u, size
		}
	}
	return best
}

// CECIRoot picks CECI's start vertex: argmin |C_NLF(u)| / d(u).
func CECIRoot(q, g *graph.Graph) graph.Vertex {
	s := newState(q, g)
	best := graph.Vertex(0)
	bestScore := -1.0
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.Vertex(u)
		score := float64(len(s.nlfCandidates(uu))) / float64(q.Degree(uu))
		if bestScore < 0 || score < bestScore {
			best, bestScore = uu, score
		}
	}
	return best
}

// DPIsoRoot picks DP-iso's start vertex: argmin |C_LDF(u)| / d(u).
func DPIsoRoot(q, g *graph.Graph) graph.Vertex {
	s := newState(q, g)
	best := graph.Vertex(0)
	bestScore := -1.0
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.Vertex(u)
		score := float64(len(s.ldfCandidates(uu))) / float64(q.Degree(uu))
		if bestScore < 0 || score < bestScore {
			best, bestScore = uu, score
		}
	}
	return best
}
