//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package store

import "os"

// mmapSupported reports whether zero-copy snapshot loads are available
// on this platform. Without it, OpenSnapshot silently falls back to the
// copying load — same graphs, heap-resident.
const mmapSupported = false

func mmapFile(f *os.File) ([]byte, error) {
	return nil, errMMapUnsupported
}

func munmap(b []byte) error { return nil }
