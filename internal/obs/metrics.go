// Package obs is the repo's zero-dependency observability layer: a
// sharded atomic metrics registry with hand-rolled Prometheus text
// exposition, and a phase-span tracing structure the matching pipeline
// threads through preprocessing and enumeration.
//
// The paper's methodology is instrumentation — it explains each
// algorithm's behavior by attributing time to filtering, ordering and
// enumeration rather than by end-to-end clocks — and this package turns
// that methodology into a serving-time facility: every request carries a
// span breakdown, and the long-lived service exports counters, gauges
// and histograms a scraper can watch.
//
// Everything here is stdlib-only (go.mod stays dependency-free) and off
// the enumeration hot path: recording is a handful of atomic adds per
// request or per phase, never per search node.
package obs

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the Prometheus family type.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a signed value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultDurationBuckets are the histogram bounds (seconds) used for
// latency families: 100µs up to ~100s in roughly-3x steps, bracketing
// everything from warm cache hits to the paper's five-minute budget.
var DefaultDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 100,
}

// Histogram is a fixed-bucket histogram: bucket counts, sum and count
// are atomics, so concurrent Observe and scrape need no lock. The scrape
// derives _count from the bucket counts it loaded, which keeps the
// cumulative-bucket/_count invariant internally consistent per snapshot
// even while observations race.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-add
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultDurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the tail slot is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// snapshot loads the bucket counts, total and sum.
func (h *Histogram) snapshot() (counts []uint64, total uint64, sum float64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, total, math.Float64frombits(h.sum.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// vecShards is the shard count of each labeled family's children map.
// Lookups hash the label key onto a shard, so concurrent recorders with
// different label sets contend on different locks; the values themselves
// are atomics, so the lock is held only for the map access.
const vecShards = 16

type vecShard[T any] struct {
	mu sync.RWMutex
	m  map[string]*child[T]
	_  [24]byte // pad away from the neighboring shard's lock word
}

type child[T any] struct {
	values []string // label values, in label-name order
	metric *T
}

// vec is the generic sharded children store behind the labeled families.
type vec[T any] struct {
	labels []string
	newT   func() *T
	shards [vecShards]vecShard[T]
}

func newVec[T any](labels []string, newT func() *T) *vec[T] {
	v := &vec[T]{labels: labels, newT: newT}
	for i := range v.shards {
		v.shards[i].m = make(map[string]*child[T])
	}
	return v
}

// key joins label values with a separator that cannot appear unescaped.
func vecKey(values []string) string {
	return strings.Join(values, "\x1f")
}

func (v *vec[T]) with(values ...string) *T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: got %d label values for %d labels %v", len(values), len(v.labels), v.labels))
	}
	k := vecKey(values)
	h := fnv.New32a()
	io.WriteString(h, k)
	s := &v.shards[h.Sum32()%vecShards]
	s.mu.RLock()
	c, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		return c.metric
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok = s.m[k]; ok {
		return c.metric
	}
	c = &child[T]{values: append([]string(nil), values...), metric: v.newT()}
	s.m[k] = c
	return c.metric
}

// children returns every (labelValues, metric) pair, sorted by key for
// deterministic exposition.
func (v *vec[T]) children() []*child[T] {
	var out []*child[T]
	for i := range v.shards {
		s := &v.shards[i]
		s.mu.RLock()
		for _, c := range s.m {
			out = append(out, c)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		return vecKey(out[i].values) < vecKey(out[j].values)
	})
	return out
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	vec *vec[Counter]
}

// With returns (creating on first use) the child counter for the given
// label values, which must match the family's label names in count and
// order.
func (c *CounterVec) With(values ...string) *Counter { return c.vec.with(values...) }

// Value returns the child's current count, 0 if the child was never
// touched — reading does not create children.
func (c *CounterVec) Value(values ...string) uint64 {
	k := vecKey(values)
	h := fnv.New32a()
	io.WriteString(h, k)
	s := &c.vec.shards[h.Sum32()%vecShards]
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ch, ok := s.m[k]; ok {
		return ch.metric.Value()
	}
	return 0
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	vec *vec[Gauge]
}

// With returns the child gauge for the given label values.
func (g *GaugeVec) With(values ...string) *Gauge { return g.vec.with(values...) }

// HistogramVec is a histogram family partitioned by label values; every
// child shares the family's bucket bounds.
type HistogramVec struct {
	vec    *vec[Histogram]
	bounds []float64
}

// With returns the child histogram for the given label values.
func (h *HistogramVec) With(values ...string) *Histogram { return h.vec.with(values...) }

// family is one named metric family registered in a Registry.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string

	counter    *Counter
	gauge      *Gauge
	gaugeFn    func() float64
	histogram  *Histogram
	counterVec *CounterVec
	gaugeVec   *GaugeVec
	histVec    *HistogramVec
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Family registration takes the registry lock;
// recording into an already-created metric touches only that metric's
// atomics (plus a sharded read-lock for labeled lookups), so the
// registry itself never serializes recorders.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.families[f.name] = f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: TypeCounter, counter: c})
	return c
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: TypeGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the natural fit for occupancy read from another structure (admission
// in-use, cache size) instead of double-booking it.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: TypeGauge, gaugeFn: fn})
}

// Histogram registers and returns an unlabeled histogram; nil bounds use
// DefaultDurationBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&family{name: name, help: help, typ: TypeHistogram, histogram: h})
	return h
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{vec: newVec(labels, func() *Counter { return &Counter{} })}
	r.register(&family{name: name, help: help, typ: TypeCounter, labels: labels, counterVec: cv})
	return cv
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	gv := &GaugeVec{vec: newVec(labels, func() *Gauge { return &Gauge{} })}
	r.register(&family{name: name, help: help, typ: TypeGauge, labels: labels, gaugeVec: gv})
	return gv
}

// HistogramVec registers a labeled histogram family; nil bounds use
// DefaultDurationBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	proto := newHistogram(bounds)
	hv := &HistogramVec{
		bounds: proto.bounds,
		vec: newVec(labels, func() *Histogram {
			return newHistogram(proto.bounds)
		}),
	}
	r.register(&family{name: name, help: help, typ: TypeHistogram, labels: labels, histVec: hv})
	return hv
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if v == math.Inf(1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for the given names and values, with
// an optional extra pair appended (the histogram "le" bound).
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func writeHistogram(w io.Writer, name string, labels, values []string, h *Histogram) {
	counts, total, sum := h.snapshot()
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, values, "le", formatFloat(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, values, "le", "+Inf"), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(labels, values, "", ""), formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels, values, "", ""), total)
}

// WritePrometheus renders every registered family in the text exposition
// format, families sorted by name and children by label values, so two
// scrapes of the same state are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.counter != nil:
			fmt.Fprintf(w, "%s %d\n", f.name, f.counter.Value())
		case f.gauge != nil:
			fmt.Fprintf(w, "%s %d\n", f.name, f.gauge.Value())
		case f.gaugeFn != nil:
			fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gaugeFn()))
		case f.histogram != nil:
			writeHistogram(w, f.name, nil, nil, f.histogram)
		case f.counterVec != nil:
			for _, c := range f.counterVec.vec.children() {
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, c.values, "", ""), c.metric.Value())
			}
		case f.gaugeVec != nil:
			for _, c := range f.gaugeVec.vec.children() {
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, c.values, "", ""), c.metric.Value())
			}
		case f.histVec != nil:
			for _, c := range f.histVec.vec.children() {
				writeHistogram(w, f.name, f.labels, c.values, c.metric)
			}
		}
	}
}
