package order

import (
	"math/rand"
	"reflect"
	"testing"

	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/testutil"
)

// TestOrdersDeterministic: every ordering method must be a pure function
// of its inputs — the experiments' reproducibility depends on it.
func TestOrdersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := testutil.RandomGraph(rng, 30, 90, 3)
		q := testutil.RandomConnectedQuery(rng, g, 6)
		if q == nil {
			continue
		}
		cand := filter.RunNLF(q, g)
		for _, m := range Methods() {
			a, err1 := Compute(m, q, g, cand)
			b, err2 := Compute(m, q, g, cand)
			if err1 != nil || err2 != nil {
				t.Fatalf("%v: %v %v", m, err1, err2)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%v is nondeterministic: %v vs %v", m, a, b)
			}
		}
	}
}

// TestDPIsoPostponesDegreeOneVertices checks the paper's degree-one
// decomposition: leaves appear after all core vertices.
func TestDPIsoPostponesDegreeOneVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		g := testutil.RandomGraph(rng, 30, 60, 2)
		q := testutil.RandomConnectedQuery(rng, g, 6)
		if q == nil {
			continue
		}
		phi := ComputeDPIso(q, g)
		if err := Validate(q, phi); err != nil {
			t.Fatalf("invalid DPiso order: %v", err)
		}
		// After the first degree-one non-root vertex, only degree-one
		// vertices may follow.
		seenLeaf := false
		for i, u := range phi {
			isLeaf := q.Degree(u) == 1 && i > 0
			if seenLeaf && !isLeaf {
				t.Fatalf("order %v interleaves core vertices after leaves (degrees %v)",
					phi, degreesOf(q, phi))
			}
			if isLeaf {
				seenLeaf = true
			}
		}
	}
}

func degreesOf(q interface{ Degree(uint32) int }, phi []uint32) []int {
	out := make([]int, len(phi))
	for i, u := range phi {
		out[i] = q.Degree(u)
	}
	return out
}
