package order

import (
	"math/rand"

	"subgraphmatching/internal/graph"
)

// Random samples a uniform-ish random matching order with connected
// prefixes: a random start vertex, then repeated uniform choices among
// the unordered neighbors of the prefix. The spectrum analysis of
// Figure 14 samples 1000 such orders per query.
func Random(rng *rand.Rand, q *graph.Graph) []graph.Vertex {
	n := q.NumVertices()
	phi := make([]graph.Vertex, 0, n)
	in := make([]bool, n)
	frontier := make([]graph.Vertex, 0, n)

	start := graph.Vertex(rng.Intn(n))
	phi = append(phi, start)
	in[start] = true
	inFrontier := make([]bool, n)
	for _, un := range q.Neighbors(start) {
		frontier = append(frontier, un)
		inFrontier[un] = true
	}
	for len(phi) < n {
		i := rng.Intn(len(frontier))
		u := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		phi = append(phi, u)
		in[u] = true
		for _, un := range q.Neighbors(u) {
			if !in[un] && !inFrontier[un] {
				frontier = append(frontier, un)
				inFrontier[un] = true
			}
		}
	}
	return phi
}
