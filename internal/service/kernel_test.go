package service

import (
	"context"
	"math/rand"
	"testing"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/intersect"
	"subgraphmatching/internal/testutil"
)

// TestConfigHashSeparatesKernelPolicies: plans built under different
// kernel policies must not share cache entries — PolicyBlock plans carry
// a block layout that a pinned-merge request would drag along, and vice
// versa a merge-built plan lacks the layout an adaptive run wants.
func TestConfigHashSeparatesKernelPolicies(t *testing.T) {
	base := core.Config{}
	seen := map[uint64]intersect.Policy{}
	for _, p := range []intersect.Policy{
		intersect.PolicyAdaptive, intersect.PolicyMerge, intersect.PolicyGallop,
		intersect.PolicyHybrid, intersect.PolicyBlock,
	} {
		cfg := base
		cfg.Kernel = p
		h := configHash(cfg, 1)
		if prev, dup := seen[h]; dup {
			t.Fatalf("policies %v and %v share config hash %#x", prev, p, h)
		}
		seen[h] = p
	}
}

// TestRequestKernelOverride: a request-level kernel override reaches
// the executed config, distinct policies get distinct plan-cache
// entries, and the service-wide kernel mix shows up in Stats.
func TestRequestKernelOverride(t *testing.T) {
	s, g := newTestService(t, Config{})
	defer s.Close()
	rng := rand.New(rand.NewSource(3))
	q := testutil.RandomConnectedQuery(rng, g, 5)
	if q == nil {
		t.Fatal("no query")
	}
	ctx := context.Background()

	var want uint64
	for i, kern := range []intersect.Policy{intersect.PolicyAdaptive, intersect.PolicyMerge, intersect.PolicyHybrid} {
		resp, err := s.Submit(ctx, Request{Graph: "main", Query: q, Algorithm: core.Optimized, Kernel: kern})
		if err != nil {
			t.Fatalf("kernel %v: %v", kern, err)
		}
		if i == 0 {
			want = resp.Result.Embeddings
		} else if resp.Result.Embeddings != want {
			t.Errorf("kernel %v: %d embeddings, want %d", kern, resp.Result.Embeddings, want)
		}
		if resp.CacheHit {
			t.Errorf("kernel %v: unexpected cache hit — policies must not share plans", kern)
		}
	}
	// Same policy again: now the plan is shared.
	resp, err := s.Submit(ctx, Request{Graph: "main", Query: q, Algorithm: core.Optimized, Kernel: intersect.PolicyMerge})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("repeat request with the same kernel policy missed the cache")
	}

	st := s.Stats()
	if resp.Result.Kernels.Total() > 0 && len(st.Kernels) == 0 {
		t.Errorf("requests tallied kernels but Stats.Kernels is empty")
	}
	var total uint64
	for _, n := range st.Kernels {
		total += n
	}
	if resp.Result.Kernels.Total() > 0 && total == 0 {
		t.Errorf("Stats.Kernels sums to zero: %v", st.Kernels)
	}
}
