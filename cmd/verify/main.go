// Command verify is a randomized consistency checker: it generates
// random data graphs and queries, runs every algorithm preset plus a
// brute-force reference, and reports any disagreement in embedding
// counts. This is the cross-algorithm agreement invariant from the test
// suite, packaged as a long-running fuzzer for soak testing.
//
// Usage:
//
//	verify [-duration 30s] [-seed 1] [-max-vertices 40] [-v]
//
// Exit status is non-zero iff a disagreement or error was found.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/testutil"
)

func main() {
	var (
		duration    = flag.Duration("duration", 10*time.Second, "how long to fuzz")
		seed        = flag.Int64("seed", 0, "starting seed (0 = time-based)")
		maxVertices = flag.Int("max-vertices", 40, "maximum data-graph size")
		verbose     = flag.Bool("v", false, "print every trial")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	trials, failures := fuzz(*duration, *seed, *maxVertices, *verbose)
	fmt.Printf("verify: %d trials, %d failures (seed %d)\n", trials, failures, *seed)
	if failures > 0 {
		os.Exit(1)
	}
}

// fuzz runs randomized agreement trials until the deadline, returning
// trial and failure counts.
func fuzz(duration time.Duration, seed int64, maxVertices int, verbose bool) (trials, failures int) {
	deadline := time.Now().Add(duration)
	for trial := 0; time.Now().Before(deadline); trial++ {
		trialSeed := seed + int64(trial)
		ok, desc := runTrial(trialSeed, maxVertices)
		trials++
		if !ok {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL seed=%d: %s\n", trialSeed, desc)
		} else if verbose {
			fmt.Printf("ok   seed=%d: %s\n", trialSeed, desc)
		}
	}
	return trials, failures
}

// runTrial executes one randomized agreement check. It returns whether
// every preset matched the brute-force count, plus a description.
func runTrial(seed int64, maxVertices int) (bool, string) {
	rng := rand.New(rand.NewSource(seed))
	n := 10 + rng.Intn(maxVertices-10+1)
	g := testutil.RandomGraph(rng, n, 2*n+rng.Intn(3*n), 1+rng.Intn(4))
	q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(4))
	if q == nil {
		return true, "no query extracted"
	}
	want := testutil.BruteForceCount(q, g, 0)
	desc := fmt.Sprintf("data %v, query %v, %d embeddings", g, q, want)
	for _, a := range core.Algorithms() {
		res, err := core.Match(q, g, core.PresetConfig(a, q, g), core.Limits{})
		if err != nil {
			return false, fmt.Sprintf("%s; %v errored: %v", desc, a, err)
		}
		if res.Embeddings != want {
			return false, fmt.Sprintf("%s; %v found %d", desc, a, res.Embeddings)
		}
	}
	// Parallel execution must agree too.
	res, err := core.Match(q, g, core.PresetConfig(core.Optimized, q, g), core.Limits{Parallel: 4})
	if err != nil || res.Embeddings != want {
		return false, fmt.Sprintf("%s; parallel disagreed (%v, err %v)", desc, res, err)
	}
	return true, desc
}
