package intersect

import (
	"math/rand"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	for p := PolicyAdaptive; p <= PolicyBlock; p++ {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParsePolicy("simd"); err == nil {
		t.Error("ParsePolicy accepted an unknown name")
	}
	if Policy(200).String() != "Policy(200)" {
		t.Errorf("out-of-range Policy String = %q", Policy(200).String())
	}
}

func TestKernelStats(t *testing.T) {
	var s KernelStats
	if s.Total() != 0 || s.Map() != nil {
		t.Fatalf("zero stats: Total %d, Map %v", s.Total(), s.Map())
	}
	s[KernelMerge] = 3
	s[KernelBlock] = 2
	var o KernelStats
	o[KernelMerge] = 1
	o[KernelGallop] = 5
	s.Add(o)
	if s.Total() != 11 {
		t.Fatalf("Total = %d, want 11", s.Total())
	}
	m := s.Map()
	if m["merge"] != 4 || m["gallop"] != 5 || m["block"] != 2 {
		t.Fatalf("Map = %v", m)
	}
	for i, name := range KernelNames() {
		if Kernel(i).String() != name {
			t.Errorf("Kernel(%d).String() = %q, want %q", i, Kernel(i).String(), name)
		}
	}
}

// policies lists every dispatch policy a selector can run under.
func policies() []Policy {
	return []Policy{PolicyAdaptive, PolicyMerge, PolicyGallop, PolicyHybrid, PolicyBlock}
}

// TestSelectorPairAgreesAcrossPolicies is the core output invariant:
// every policy, with and without block views, produces the identical
// intersection — policies change speed, never results.
func TestSelectorPairAgreesAcrossPolicies(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		max := []int{200, 3000, 80000}[rng.Intn(3)]
		na := rng.Intn(300)
		nb := na
		if rng.Intn(2) == 0 {
			nb = na * (GallopThreshold + rng.Intn(32)) // skewed pair
		}
		a := randomSorted(rng, na, max+na*2)
		b := randomSorted(rng, nb, max+nb*4)
		f := buildFlat([][]uint32{a, b})
		av, bv := f.View(0), f.View(1)
		want := naive(a, b)
		for _, p := range policies() {
			var s Selector
			s.SetPolicy(p)
			if got := s.Pair(nil, a, b, av, bv); !equal(got, want) {
				t.Fatalf("seed %d policy %v (views): got %v, want %v", seed, p, got, want)
			}
			if got := s.Pair(nil, a, b, BlockView{}, BlockView{}); !equal(got, want) {
				t.Fatalf("seed %d policy %v (no views): got %v, want %v", seed, p, got, want)
			}
			if len(a) > 0 && len(b) > 0 && s.Stats().Total() != 2 {
				t.Fatalf("seed %d policy %v: %d kernel executions tallied, want 2", seed, p, s.Stats().Total())
			}
		}
	}
}

// TestSelectorStaticPolicyKernels pins which kernel each static policy
// tallies, and that adaptive picks block under density (even skewed),
// gallop under sparse skew, merge otherwise.
func TestSelectorStaticPolicyKernels(t *testing.T) {
	dense := make([]uint32, 256) // 4 full blocks: 64 elements per block
	for i := range dense {
		dense[i] = uint32(i)
	}
	sparse := make([]uint32, 256) // 256 blocks, 1 element each
	for i := range sparse {
		sparse[i] = uint32(i * 64)
	}
	skewSmall := dense[:4]
	f := buildFlat([][]uint32{dense, sparse, skewSmall})
	dv, sv, kv := f.View(0), f.View(1), f.View(2)

	run := func(p Policy, a, b []uint32, av, bv BlockView) KernelStats {
		var s Selector
		s.SetPolicy(p)
		s.Pair(nil, a, b, av, bv)
		return s.Stats()
	}
	if st := run(PolicyMerge, dense, sparse, dv, sv); st[KernelMerge] != 1 {
		t.Errorf("merge policy tallied %v", st)
	}
	if st := run(PolicyGallop, dense, sparse, dv, sv); st[KernelGallop] != 1 {
		t.Errorf("gallop policy tallied %v", st)
	}
	if st := run(PolicyBlock, dense, sparse, dv, sv); st[KernelBlock] != 1 {
		t.Errorf("block policy tallied %v", st)
	}
	// Block policy without views falls back to the hybrid switch.
	if st := run(PolicyBlock, dense, sparse, BlockView{}, BlockView{}); st[KernelBlock] != 0 || st.Total() != 1 {
		t.Errorf("block policy without views tallied %v", st)
	}
	// Hybrid: balanced sizes merge, GallopThreshold-skewed sizes gallop.
	if st := run(PolicyHybrid, dense, sparse, dv, sv); st[KernelMerge] != 1 {
		t.Errorf("hybrid on balanced sizes tallied %v", st)
	}
	if st := run(PolicyHybrid, skewSmall, sparse, kv, sv); st[KernelGallop] != 1 {
		t.Errorf("hybrid on skewed sizes tallied %v", st)
	}
	// Adaptive: density beats skew — a dense skewed pair takes the block
	// kernel (its block-key merge gallops), a sparse skewed pair fails
	// the density test and gallops, dense balanced inputs take the block
	// kernel, and without views it degrades to the hybrid choice.
	if st := run(PolicyAdaptive, skewSmall, dense, kv, dv); st[KernelBlock] != 1 {
		t.Errorf("adaptive on dense skewed sizes tallied %v", st)
	}
	if st := run(PolicyAdaptive, skewSmall, sparse, kv, sv); st[KernelGallop] != 1 {
		t.Errorf("adaptive on sparse skewed sizes tallied %v", st)
	}
	if st := run(PolicyAdaptive, dense, dense, dv, dv); st[KernelBlock] != 1 {
		t.Errorf("adaptive on dense inputs tallied %v", st)
	}
	if st := run(PolicyAdaptive, dense, sparse, dv, sv); st[KernelMerge] != 1 {
		t.Errorf("adaptive on sparse balanced inputs tallied %v", st)
	}
	if st := run(PolicyAdaptive, dense, dense, BlockView{}, BlockView{}); st[KernelMerge] != 1 {
		t.Errorf("adaptive without views tallied %v", st)
	}
	// Empty inputs execute no kernel at all.
	if st := run(PolicyAdaptive, nil, dense, BlockView{}, dv); st.Total() != 0 {
		t.Errorf("empty input tallied %v", st)
	}
}

// TestSelectorManyAgreesWithScratch checks the k-way dispatcher against
// the established Scratch.IntersectMany on random inputs, for every
// policy, with and without views.
func TestSelectorManyAgreesWithScratch(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(6)
		sets := make([][]uint32, k)
		for i := range sets {
			n := rng.Intn(200)
			if rng.Intn(4) == 0 {
				n *= GallopThreshold
			}
			sets[i] = randomSorted(rng, n, 2000+n*4)
		}
		f := buildFlat(sets)
		var sc Scratch
		ref := make([][]uint32, k)
		copy(ref, sets)
		want := sc.IntersectMany(nil, ref...)
		for _, p := range policies() {
			var s Selector
			s.SetPolicy(p)
			in := make([][]uint32, k)
			copy(in, sets)
			views := make([]BlockView, k)
			for i := range views {
				views[i] = f.View(i)
			}
			if got := s.Many(nil, in, views); !equal(got, want) {
				t.Fatalf("seed %d policy %v (views): got %v, want %v", seed, p, got, want)
			}
			copy(in, sets)
			if got := s.Many(nil, in, nil); !equal(got, want) {
				t.Fatalf("seed %d policy %v (no views): got %v, want %v", seed, p, got, want)
			}
		}
	}
}

// TestSelectorManySteadyStateAllocFree mirrors the Scratch guarantee:
// after warmup, k-way dispatch through the selector allocates nothing.
func TestSelectorManySteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sets := [][]uint32{
		randomSorted(rng, 200, 1000),
		randomSorted(rng, 200, 1000),
		randomSorted(rng, 200, 1000),
	}
	f := buildFlat(sets)
	views := []BlockView{f.View(0), f.View(1), f.View(2)}
	var s Selector
	dst := make([]uint32, 0, 256)
	s.Many(dst, sets, views) // warm the scratch buffers
	for _, p := range policies() {
		s.SetPolicy(p)
		if n := testing.AllocsPerRun(100, func() {
			dst = s.Many(dst[:0], sets, views)
		}); n != 0 {
			t.Errorf("policy %v: %.1f allocs per k-way call, want 0", p, n)
		}
	}
}
