package enumerate

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"subgraphmatching/internal/candspace"
	"subgraphmatching/internal/filter"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/testutil"
)

// fixture bundles everything a Run call needs.
type fixture struct {
	q, g  *graph.Graph
	cand  [][]uint32
	space *candspace.Space
	phi   []graph.Vertex
}

func newFixture(t testing.TB, q, g *graph.Graph, fm filter.Method) *fixture {
	t.Helper()
	cand, err := filter.Run(fm, q, g)
	if err != nil {
		t.Fatalf("filter: %v", err)
	}
	return &fixture{
		q: q, g: g, cand: cand,
		space: candspace.BuildFull(q, g, cand),
		phi:   graph.NewBFSTree(q, 0).Order,
	}
}

func (f *fixture) run(t testing.TB, opts Options) *Stats {
	t.Helper()
	st, err := Run(f.q, f.g, f.cand, f.space, f.phi, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return st
}

func TestPaperExampleSingleMatch(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	want := testutil.PaperMatch()
	for _, fm := range []filter.Method{filter.LDF, filter.NLF, filter.GQL, filter.CFL} {
		f := newFixture(t, q, g, fm)
		for _, local := range []LocalCandidates{Direct, Scan, TreeEdge, Intersect, IntersectBlock} {
			var got []uint32
			st := f.run(t, Options{Local: local, OnMatch: func(m []uint32) bool {
				got = append([]uint32(nil), m...)
				return true
			}})
			if st.Embeddings != 1 {
				t.Errorf("filter %v local %v: %d embeddings, want 1", fm, local, st.Embeddings)
				continue
			}
			for u, v := range want {
				if got[u] != v {
					t.Errorf("filter %v local %v: match %v, want %v", fm, local, got, want)
					break
				}
			}
		}
	}
}

func TestTreeEdgeModeWithTreeSpace(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := filter.RunCFL(q, g)
	tree := graph.NewBFSTree(q, 0)
	space := candspace.BuildTree(q, g, cand, tree.Parent)
	st, err := Run(q, g, cand, space, tree.Order, Options{Local: TreeEdge})
	if err != nil {
		t.Fatal(err)
	}
	if st.Embeddings != 1 {
		t.Errorf("tree-edge with tree space found %d embeddings, want 1", st.Embeddings)
	}
}

// TestAgreementProperty is the central end-to-end invariant: every
// combination of local-candidate method, failing sets, and adaptive
// ordering must count exactly the same embeddings as brute force, on
// randomized graphs and queries, with every match valid.
func TestAgreementProperty(t *testing.T) {
	type config struct {
		name string
		opts Options
	}
	configs := []config{
		{"direct", Options{Local: Direct}},
		{"direct+vf2pp", Options{Local: Direct, VF2PPRules: true}},
		{"scan", Options{Local: Scan}},
		{"tree-edge", Options{Local: TreeEdge}},
		{"intersect", Options{Local: Intersect}},
		{"intersect-block", Options{Local: IntersectBlock}},
		{"intersect+fs", Options{Local: Intersect, FailingSets: true}},
		{"scan+fs", Options{Local: Scan, FailingSets: true}},
		{"direct+fs", Options{Local: Direct, FailingSets: true}},
		{"adaptive", Options{Local: Intersect, Adaptive: true}},
		{"adaptive+fs", Options{Local: Intersect, Adaptive: true, FailingSets: true}},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 12+rng.Intn(18), 30+rng.Intn(40), 2+rng.Intn(3))
		q := testutil.RandomConnectedQuery(rng, g, 3+rng.Intn(4))
		if q == nil {
			return true
		}
		want := testutil.BruteForceCount(q, g, 0)
		for _, fm := range []filter.Method{filter.LDF, filter.GQL, filter.CECI, filter.DPIso} {
			cand, err := filter.Run(fm, q, g)
			if err != nil {
				t.Logf("filter %v: %v", fm, err)
				return false
			}
			space := candspace.BuildFull(q, g, cand)
			for _, om := range []order.Method{order.GQL, order.RI, order.CFL} {
				phi, err := order.Compute(om, q, g, cand)
				if err != nil {
					t.Logf("order %v: %v", om, err)
					return false
				}
				for _, cfg := range configs {
					opts := cfg.opts
					valid := true
					opts.OnMatch = func(m []uint32) bool {
						if !testutil.IsValidEmbedding(q, g, m) {
							valid = false
							return false
						}
						return true
					}
					st, err := Run(q, g, cand, space, phi, opts)
					if err != nil {
						t.Logf("run %s: %v", cfg.name, err)
						return false
					}
					if !valid {
						t.Logf("%s with filter %v order %v produced an invalid embedding", cfg.name, fm, om)
						return false
					}
					if st.Embeddings != want {
						t.Logf("%s with filter %v order %v: %d embeddings, brute force %d (seed %d)",
							cfg.name, fm, om, st.Embeddings, want, seed)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAdaptiveWithWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		g := testutil.RandomGraph(rng, 20, 60, 3)
		q := testutil.RandomConnectedQuery(rng, g, 5)
		if q == nil {
			continue
		}
		cand, _ := filter.Run(filter.DPIso, q, g)
		space := candspace.BuildFull(q, g, cand)
		delta := order.ComputeDPIso(q, g)
		weights := order.BuildDPWeights(q, space, delta)
		want := testutil.BruteForceCount(q, g, 0)
		st, err := Run(q, g, cand, space, delta, Options{
			Local: Intersect, Adaptive: true, AdaptiveWeights: weights, FailingSets: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Embeddings != want {
			t.Fatalf("adaptive+weights: %d embeddings, want %d", st.Embeddings, want)
		}
	}
}

func TestMaxEmbeddingsCap(t *testing.T) {
	// A clique-ish labeled graph with many automorphic matches.
	labels := make([]graph.Label, 8)
	var edges [][2]graph.Vertex
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(j)})
		}
	}
	g := graph.MustFromEdges(labels, edges)
	q := graph.MustFromEdges(make([]graph.Label, 3), [][2]graph.Vertex{{0, 1}, {1, 2}, {0, 2}})
	f := &fixture{q: q, g: g, cand: filter.RunLDF(q, g)}
	f.space = candspace.BuildFull(q, g, f.cand)
	f.phi = graph.NewBFSTree(q, 0).Order

	st := f.run(t, Options{Local: Intersect, MaxEmbeddings: 10})
	if st.Embeddings != 10 || !st.LimitHit {
		t.Errorf("cap: embeddings=%d limitHit=%v", st.Embeddings, st.LimitHit)
	}
	// 8*7*6 = 336 triangle embeddings without the cap.
	st = f.run(t, Options{Local: Intersect})
	if st.Embeddings != 336 {
		t.Errorf("uncapped: %d embeddings, want 336", st.Embeddings)
	}
	if !st.Solved() {
		t.Error("uncapped run should be solved")
	}
}

func TestOnMatchAbort(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	f := newFixture(t, q, g, filter.LDF)
	calls := 0
	st := f.run(t, Options{Local: Intersect, OnMatch: func(m []uint32) bool {
		calls++
		return false
	}})
	if calls != 1 || st.Embeddings != 1 {
		t.Errorf("OnMatch abort: calls=%d embeddings=%d", calls, st.Embeddings)
	}
}

func TestTimeLimit(t *testing.T) {
	// Unlabeled dense random graph with a 6-cycle query explodes
	// combinatorially; a tiny time limit must fire.
	rng := rand.New(rand.NewSource(5))
	g := testutil.RandomGraph(rng, 400, 8000, 1)
	q := graph.MustFromEdges(make([]graph.Label, 6),
		[][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	cand := filter.RunLDF(q, g)
	space := candspace.BuildFull(q, g, cand)
	phi := graph.NewBFSTree(q, 0).Order
	st, err := Run(q, g, cand, space, phi, Options{Local: Intersect, TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !st.TimedOut || st.Solved() {
		t.Errorf("expected timeout, got %+v", st)
	}
}

func TestFailingSetsNeverChangeCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 15+rng.Intn(15), 40+rng.Intn(40), 2)
		q := testutil.RandomConnectedQuery(rng, g, 4+rng.Intn(3))
		if q == nil {
			return true
		}
		cand, _ := filter.Run(filter.GQL, q, g)
		space := candspace.BuildFull(q, g, cand)
		phi, _ := order.Compute(order.GQL, q, g, cand)
		a, err1 := Run(q, g, cand, space, phi, Options{Local: Intersect})
		b, err2 := Run(q, g, cand, space, phi, Options{Local: Intersect, FailingSets: true})
		if err1 != nil || err2 != nil {
			return false
		}
		if a.Embeddings != b.Embeddings {
			t.Logf("failing sets changed count: %d vs %d (seed %d)", a.Embeddings, b.Embeddings, seed)
			return false
		}
		return b.Nodes <= a.Nodes // pruning must never explore more nodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValidationErrors(t *testing.T) {
	q, g := testutil.PaperQuery(), testutil.PaperData()
	cand := filter.RunLDF(q, g)
	space := candspace.BuildFull(q, g, cand)
	phi := graph.NewBFSTree(q, 0).Order

	cases := []struct {
		name string
		fn   func() error
	}{
		{"short order", func() error {
			_, err := Run(q, g, cand, space, phi[:2], Options{})
			return err
		}},
		{"bad candidates", func() error {
			_, err := Run(q, g, cand[:1], space, phi, Options{})
			return err
		}},
		{"missing space", func() error {
			_, err := Run(q, g, cand, nil, phi, Options{Local: Intersect})
			return err
		}},
		{"adaptive without intersect", func() error {
			_, err := Run(q, g, cand, space, phi, Options{Local: Scan, Adaptive: true})
			return err
		}},
		{"not a permutation", func() error {
			_, err := Run(q, g, cand, space, []graph.Vertex{0, 0, 1, 2}, Options{})
			return err
		}},
		{"disconnected prefix", func() error {
			_, err := Run(q, g, cand, space, []graph.Vertex{0, 3, 1, 2}, Options{})
			return err
		}},
	}
	for _, c := range cases {
		if c.fn() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Failing sets on >64 vertices.
	big := graph.NewBuilder(65, 64)
	for i := 0; i < 65; i++ {
		big.AddVertex(0)
	}
	for i := 1; i < 65; i++ {
		big.AddEdge(graph.Vertex(i-1), graph.Vertex(i))
	}
	bq := big.MustBuild()
	bcand := filter.RunLDF(bq, bq)
	bphi := graph.NewBFSTree(bq, 0).Order
	if _, err := Run(bq, bq, bcand, nil, bphi, Options{Local: Direct, FailingSets: true}); err == nil {
		t.Error("expected error for failing sets with >64 query vertices")
	}
}

func TestEmptyQuery(t *testing.T) {
	q := graph.MustFromEdges(nil, nil)
	st, err := Run(q, testutil.PaperData(), nil, nil, nil, Options{})
	if err != nil || st.Embeddings != 0 {
		t.Errorf("empty query: %v, %+v", err, st)
	}
}
