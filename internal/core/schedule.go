package core

import (
	"fmt"
	"sync"
)

// Schedule selects how parallel enumeration distributes the search
// space across workers (Limits.Schedule).
type Schedule uint8

const (
	// ScheduleWorkSteal (the default) turns root candidates — and, when
	// the root's candidate list is small relative to the worker count,
	// their depth-1 expansions — into task units held in per-worker
	// deques; an idle worker steals half of a victim's remaining tasks.
	// Wall-clock time tracks total work instead of the heaviest static
	// partition, which matters on power-law data graphs where one root
	// candidate can own orders of magnitude more search tree than the
	// rest.
	ScheduleWorkSteal Schedule = iota
	// ScheduleStrided is the static partition scheme: worker w explores
	// the root candidates at indices w, w+P, w+2P, ... with no
	// rebalancing. Kept as the skew-sensitive baseline the benchmarks
	// compare against.
	ScheduleStrided
)

var scheduleNames = map[Schedule]string{
	ScheduleWorkSteal: "steal",
	ScheduleStrided:   "strided",
}

func (s Schedule) String() string {
	if n, ok := scheduleNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Schedule(%d)", s)
}

// ParseSchedule maps a name (as printed by String) back to a Schedule.
func ParseSchedule(s string) (Schedule, error) {
	for sc, name := range scheduleNames {
		if name == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("core: unknown schedule %q (want steal or strided)", s)
}

// Schedules lists the scheduler modes in declaration order.
func Schedules() []Schedule { return []Schedule{ScheduleWorkSteal, ScheduleStrided} }

// DefaultSplitFactor: when the root vertex has fewer than
// workers*DefaultSplitFactor candidates, the scheduler refines root
// candidates into finer task units (depth-1 pairs, or cost-model-sized
// prefixes) so that a single heavy root cannot serialize the run. Larger
// candidate lists already provide enough task-level parallelism to
// balance through stealing alone.
const DefaultSplitFactor = 32

// SplitPolicy selects how the work-stealing scheduler sizes its task
// units when the root candidate list is small (Limits.Split).
type SplitPolicy uint8

const (
	// SplitCostModel (the default) estimates each task's subtree weight
	// from candidate cardinalities and edge selectivities, refined by the
	// probed fanout of its pinned prefix, and recursively splits any task
	// whose estimate exceeds a share of the total — below depth 1 when one
	// (root, second) pair still dominates. In adaptive (DP-iso) mode heavy
	// roots split on the runtime-chosen second vertex. The per-task
	// estimates sum to a predicted node count reported in
	// Result.Split/EXPLAIN against the measured one.
	SplitCostModel SplitPolicy = iota
	// SplitStatic is the pre-cost-model heuristic: in the small-root
	// regime every root candidate is expanded into all its depth-1
	// (root, second) pairs, with no weighting and no recursion. Kept as
	// the baseline the scheduling benchmarks compare against.
	SplitStatic
)

var splitPolicyNames = map[SplitPolicy]string{
	SplitCostModel: "cost",
	SplitStatic:    "static",
}

func (p SplitPolicy) String() string {
	if n, ok := splitPolicyNames[p]; ok {
		return n
	}
	return fmt.Sprintf("SplitPolicy(%d)", p)
}

// ParseSplitPolicy maps a name (as printed by String) back to a
// SplitPolicy.
func ParseSplitPolicy(s string) (SplitPolicy, error) {
	for p, name := range splitPolicyNames {
		if name == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown split policy %q (want cost or static)", s)
}

// SplitPolicies lists the split policies in declaration order.
func SplitPolicies() []SplitPolicy { return []SplitPolicy{SplitCostModel, SplitStatic} }

// enumTask is one unit of schedulable work: a root candidate, optionally
// pinned to a depth-1 expansion (second != noSecond), or — for the
// recursive cost-model splitter — to an arbitrary-length order prefix.
type enumTask struct {
	root, second uint32
	// prefix, when non-nil, pins the order's first len(prefix) vertices
	// (root and second mirror prefix[0] and prefix[1]); the task runs via
	// Engine.RunPrefix. Immutable once built — deques share it by header.
	prefix []uint32
}

// noSecond marks a root-only task.
const noSecond = ^uint32(0)

// taskDeque is one worker's chunk of the task pool. The owner pops from
// the tail; thieves take half of the remaining tasks from the head in a
// single lock acquisition (chunked stealing), so a mostly-idle run costs
// O(log tasks) steals per worker rather than one contended lock per
// task. The task set is static — no task ever spawns another — which
// keeps termination detection trivial: a full sweep of empty deques
// means all remaining work is already being executed.
type taskDeque struct {
	mu    sync.Mutex
	head  int
	tasks []enumTask
}

// pop removes a task from the tail (the owner's end).
func (d *taskDeque) pop() (enumTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.tasks) {
		return enumTask{}, false
	}
	t := d.tasks[len(d.tasks)-1]
	d.tasks = d.tasks[:len(d.tasks)-1]
	return t, true
}

// stealHalf removes and returns (a copy of) the first half of the
// remaining tasks, rounded up, from the head. It returns nil when the
// deque is empty.
func (d *taskDeque) stealHalf() []enumTask {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks) - d.head
	if n <= 0 {
		return nil
	}
	k := (n + 1) / 2
	chunk := append([]enumTask(nil), d.tasks[d.head:d.head+k]...)
	d.head += k
	return chunk
}

// push appends tasks at the tail (used for seeding and for depositing a
// stolen chunk into the thief's own deque).
func (d *taskDeque) push(ts ...enumTask) {
	d.mu.Lock()
	d.tasks = append(d.tasks, ts...)
	d.mu.Unlock()
}

// stealInto sweeps the other deques starting after w and moves one
// stolen chunk into self. It reports whether any work was found — false
// means every deque was empty at the time it was visited, and since
// tasks are never respawned the worker can exit — along with the number
// of empty victims probed during the sweep, the scheduler's
// failed-steal tally.
func stealInto(self *taskDeque, deques []*taskDeque, w int) (bool, int) {
	probes := 0
	for i := 1; i < len(deques); i++ {
		if chunk := deques[(w+i)%len(deques)].stealHalf(); chunk != nil {
			self.push(chunk...)
			return true, probes
		}
		probes++
	}
	return false, probes
}
