package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"subgraphmatching/internal/service"
	"subgraphmatching/internal/testutil"
)

// TestMatchBatchEndpoint drives POST /match/batch end to end: indexed
// results, duplicate items served (one of them a cache-hit fan-out),
// and a reference /match agreeing on the counts.
func TestMatchBatchEndpoint(t *testing.T) {
	ts, g := newTestServer(t)
	q := graphText(t, testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4))

	resp, body := do(t, "POST", ts.URL+"/match?graph=main&algo=CFL", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference /match: %d %s", resp.StatusCode, body)
	}
	var ref matchResult
	if err := json.Unmarshal([]byte(body), &ref); err != nil {
		t.Fatal(err)
	}

	items, err := json.Marshal([]batchItemRequest{
		{Graph: "main", Query: q, Algo: "CFL"},
		{Graph: "main", Query: q, Algo: "CFL"},
		{Graph: "main", Query: q, Algo: "GQL"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, body = do(t, "POST", ts.URL+"/match/batch", string(items))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/match/batch: %d %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad batch response: %v\n%s", err, body)
	}
	if out.Items != 3 || out.Errors != 0 || len(out.Results) != 3 {
		t.Fatalf("envelope = items %d errors %d results %d", out.Items, out.Errors, len(out.Results))
	}
	for i, r := range out.Results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
		if r.Error != "" || r.Result == nil {
			t.Fatalf("item %d failed: %s", i, r.Error)
		}
		if r.Result.Embeddings != ref.Embeddings {
			t.Fatalf("item %d: %d embeddings, /match says %d", i, r.Result.Embeddings, ref.Embeddings)
		}
	}
	// Item 1 duplicates item 0 under the same config: it must be served
	// as a hit (shared plan at minimum; execution dedup when counts-only).
	if !out.Results[1].Result.CacheHit {
		t.Error("duplicate batch item did not report a cache hit")
	}
}

// TestMatchBatchItemIsolationStatuses: broken items fail alone with the
// status their lone /match call would have gotten; the batch still 200s.
func TestMatchBatchItemIsolationStatuses(t *testing.T) {
	ts, g := newTestServer(t)
	q := graphText(t, testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4))

	items, _ := json.Marshal([]batchItemRequest{
		{Graph: "main", Query: q},
		{Graph: "absent", Query: q},             // 404
		{Graph: "main", Query: "garbage"},       // 400 (parse)
		{Graph: "main", Query: q, Algo: "nope"}, // 400 (unknown algo)
	})
	resp, body := do(t, "POST", ts.URL+"/match/batch", string(items))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with bad items must still 200: %d %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors != 3 {
		t.Fatalf("errors = %d, want 3\n%s", out.Errors, body)
	}
	if out.Results[0].Error != "" || out.Results[0].Result == nil {
		t.Fatalf("valid item failed: %s", out.Results[0].Error)
	}
	wantStatus := []int{0, http.StatusNotFound, http.StatusBadRequest, http.StatusBadRequest}
	for i := 1; i < 4; i++ {
		if out.Results[i].Status != wantStatus[i] {
			t.Errorf("item %d status = %d, want %d (%s)", i, out.Results[i].Status, wantStatus[i], out.Results[i].Error)
		}
	}

	// Whole-batch failures keep their own statuses.
	resp, _ = do(t, "POST", ts.URL+"/match/batch", "[]")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", resp.StatusCode)
	}
	resp, _ = do(t, "POST", ts.URL+"/match/batch", "{not json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", resp.StatusCode)
	}
	big, _ := json.Marshal(make([]batchItemRequest, maxBatchItems+1))
	resp, _ = do(t, "POST", ts.URL+"/match/batch", string(big))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d, want 400", resp.StatusCode)
	}
}

// TestMatchBatchStreamNDJSON checks the streaming shape: indexed
// embedding lines followed by one indexed terminal line per item, with
// embeddings routed to the right index.
func TestMatchBatchStreamNDJSON(t *testing.T) {
	ts, g := newTestServer(t)
	q := graphText(t, testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4))

	items, _ := json.Marshal([]batchItemRequest{
		{Graph: "main", Query: q, Algo: "CFL", Limit: 5},
		{Graph: "absent", Query: q},
		{Graph: "main", Query: q, Algo: "CFL", Limit: 5},
	})
	resp, body := do(t, "POST", ts.URL+"/match/batch?stream=1", string(items))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	embeddings := map[int]int{}
	terminals := map[int]batchResultItem{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		var line struct {
			Index     int          `json:"index"`
			Embedding []uint32     `json:"embedding"`
			Result    *matchResult `json:"result"`
			Error     string       `json:"error"`
			Status    int          `json:"status"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Embedding != nil:
			embeddings[line.Index]++
		default:
			terminals[line.Index] = batchResultItem{Index: line.Index,
				Result: line.Result, Error: line.Error, Status: line.Status}
		}
	}
	if len(terminals) != 3 {
		t.Fatalf("%d terminal lines, want 3", len(terminals))
	}
	for _, i := range []int{0, 2} {
		term := terminals[i]
		if term.Error != "" || term.Result == nil {
			t.Fatalf("item %d: %+v", i, term)
		}
		if got := uint64(embeddings[i]); got != term.Result.Embeddings {
			t.Fatalf("item %d streamed %d embeddings, result says %d", i, got, term.Result.Embeddings)
		}
	}
	if terminals[1].Status != http.StatusNotFound {
		t.Fatalf("item 1 status = %d, want 404", terminals[1].Status)
	}
	if embeddings[1] != 0 {
		t.Fatal("failed item streamed embeddings")
	}
}

// TestTenantSaturatedMapsTo503RetryAfter pins the transport contract
// for the fairness clamp: ErrTenantSaturated is a retryable 503 with a
// Retry-After header, exactly like the other overload rejections.
func TestTenantSaturatedMapsTo503RetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	httpError(rec, fmt.Errorf("wrapped: %w", service.ErrTenantSaturated))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if got := statusFor(service.ErrTenantSaturated); got != http.StatusServiceUnavailable {
		t.Fatalf("statusFor = %d, want 503", got)
	}
}

// TestBatcherFlagCoalescesMatchRequests mounts the server with the
// -batch-window batcher enabled and checks that concurrent singleton
// /match requests still produce correct, independent responses while
// the service records fewer batches than requests.
func TestBatcherFlagCoalescesMatchRequests(t *testing.T) {
	svc := service.New(service.Config{})
	g := testutil.RandomGraph(rand.New(rand.NewSource(7)), 200, 600, 3)
	if _, err := svc.RegisterGraph("main", g, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(svc, serverOptions{
		batchWindow: 10 * time.Millisecond, batchMax: 32,
	}))
	defer ts.Close()
	q := graphText(t, testutil.RandomConnectedQuery(rand.New(rand.NewSource(5)), g, 4))

	const n = 24
	var wg sync.WaitGroup
	codes := make([]int, n)
	counts := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/match?graph=main&algo=CFL", "text/plain", strings.NewReader(q))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			var mr matchResult
			if json.NewDecoder(resp.Body).Decode(&mr) == nil {
				counts[i] = mr.Embeddings
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if counts[i] != counts[0] {
			t.Fatalf("request %d: %d embeddings, first got %d", i, counts[i], counts[0])
		}
	}
	st := svc.Stats()
	if st.Batches.Items != n {
		t.Fatalf("batcher carried %d items, want %d", st.Batches.Items, n)
	}
	if st.Batches.Batches >= n {
		t.Fatalf("%d batches for %d concurrent requests: nothing coalesced", st.Batches.Batches, n)
	}
}
