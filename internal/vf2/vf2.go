// Package vf2 implements the classic VF2 algorithm (Cordella et al.,
// TPAMI 2004) adapted to the paper's problem: non-induced subgraph
// isomorphism on vertex-labeled undirected graphs. VF2 is the baseline
// that VF2++ claims to outperform significantly (paper Section 1); it is
// provided so that claim can be reproduced.
//
// The state-space search maintains the mapped cores and the terminal
// sets T1 (unmapped query vertices adjacent to the core) and T2 (ditto
// for data vertices). Candidate pairs take the smallest-id vertex of T1
// against every vertex of T2, and feasibility combines label equality,
// backward-edge consistency, and the monomorphism-safe lookahead rules
// |N(u) ∩ T1| <= |N(v) ∩ T2| and |N(u) \ M| <= |N(v) \ M|. (The original
// paper's equality-based rules target induced isomorphism; for
// subgraph monomorphism only the <= direction is sound.)
package vf2

import (
	"fmt"
	"sync/atomic"
	"time"

	"subgraphmatching/internal/graph"
)

// Options configures a Solve call.
type Options struct {
	// MaxEmbeddings stops the search after this many matches (0 =
	// unlimited).
	MaxEmbeddings uint64
	// TimeLimit bounds the wall-clock search time (0 = unlimited).
	TimeLimit time.Duration
	// OnMatch, when non-nil, receives each embedding (indexed by query
	// vertex; the slice is reused). Returning false aborts the search.
	OnMatch func(mapping []uint32) bool
	// Cancel, when non-nil, is polled periodically; setting it to true
	// stops the search cooperatively (not reported as a timeout).
	Cancel *atomic.Bool
}

// Stats reports the outcome of a Solve call.
type Stats struct {
	Embeddings uint64
	Nodes      uint64
	TimedOut   bool
	LimitHit   bool
	Duration   time.Duration
}

// Solved reports whether the search completed or reached the cap.
func (s *Stats) Solved() bool { return !s.TimedOut }

// Solve finds all subgraph isomorphisms from q to g with the VF2 state
// space search.
func Solve(q, g *graph.Graph, opts Options) (*Stats, error) {
	if q.NumVertices() == 0 {
		return &Stats{}, nil
	}
	if !q.IsConnected() {
		return nil, fmt.Errorf("vf2: query graph must be connected")
	}
	s := &state{q: q, g: g, opts: opts, stats: &Stats{}}
	s.init()
	start := time.Now()
	if opts.TimeLimit > 0 {
		s.deadline = start.Add(opts.TimeLimit)
	}
	s.match(0)
	s.stats.Duration = time.Since(start)
	return s.stats, nil
}

type state struct {
	q, g  *graph.Graph
	opts  Options
	stats *Stats

	// core1[u] = data vertex mapped to u (NoVertex if unmapped);
	// core2[v] = query vertex mapped to v.
	core1 []uint32
	core2 []graph.Vertex

	// adjDepth1[u] > 0 iff unmapped query vertex u is adjacent to the
	// core (the membership count defining T1); adjDepth2 likewise for
	// data vertices.
	adjDepth1 []int32
	adjDepth2 []int32

	deadline time.Time
	ticker   int
	aborted  bool
}

func (s *state) init() {
	nQ, nG := s.q.NumVertices(), s.g.NumVertices()
	s.core1 = make([]uint32, nQ)
	s.core2 = make([]graph.Vertex, nG)
	for i := range s.core1 {
		s.core1[i] = ^uint32(0)
	}
	for i := range s.core2 {
		s.core2[i] = graph.NoVertex
	}
	s.adjDepth1 = make([]int32, nQ)
	s.adjDepth2 = make([]int32, nG)
}

func (s *state) enterNode() bool {
	s.stats.Nodes++
	s.ticker++
	if s.ticker >= 1<<12 {
		s.ticker = 0
		if s.opts.Cancel != nil && s.opts.Cancel.Load() {
			s.aborted = true
			return false
		}
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.stats.TimedOut = true
			s.aborted = true
			return false
		}
	}
	return true
}

// nextQueryVertex picks the candidate query vertex for this depth: the
// smallest-id member of T1, or the smallest-id unmapped vertex when the
// core is empty.
func (s *state) nextQueryVertex() graph.Vertex {
	bestT := graph.NoVertex
	for u := 0; u < s.q.NumVertices(); u++ {
		if s.core1[u] != ^uint32(0) {
			continue
		}
		if s.adjDepth1[u] > 0 {
			return graph.Vertex(u) // smallest-id T1 member
		}
		if bestT == graph.NoVertex {
			bestT = graph.Vertex(u)
		}
	}
	return bestT
}

// feasible applies VF2's rules for the pair (u, v).
func (s *state) feasible(u graph.Vertex, v uint32) bool {
	if s.q.Label(u) != s.g.Label(v) {
		return false
	}
	// Backward consistency: every mapped neighbor of u must map to a
	// neighbor of v. (Monomorphism: no converse requirement.)
	for _, un := range s.q.Neighbors(u) {
		if w := s.core1[un]; w != ^uint32(0) {
			if !s.g.HasEdge(w, v) {
				return false
			}
		}
	}
	// Lookahead: count u's unmapped neighbors split by terminal
	// membership, and v's likewise.
	var t1, rest1 int
	for _, un := range s.q.Neighbors(u) {
		if s.core1[un] != ^uint32(0) {
			continue
		}
		rest1++
		if s.adjDepth1[un] > 0 {
			t1++
		}
	}
	var t2, rest2 int
	for _, vn := range s.g.Neighbors(v) {
		if s.core2[vn] != graph.NoVertex {
			continue
		}
		rest2++
		if s.adjDepth2[vn] > 0 {
			t2++
		}
	}
	return t1 <= t2 && rest1 <= rest2
}

// addPair extends the state with (u, v).
func (s *state) addPair(u graph.Vertex, v uint32) {
	s.core1[u] = v
	s.core2[v] = u
	for _, un := range s.q.Neighbors(u) {
		s.adjDepth1[un]++
	}
	for _, vn := range s.g.Neighbors(v) {
		s.adjDepth2[vn]++
	}
}

// removePair undoes addPair.
func (s *state) removePair(u graph.Vertex, v uint32) {
	for _, un := range s.q.Neighbors(u) {
		s.adjDepth1[un]--
	}
	for _, vn := range s.g.Neighbors(v) {
		s.adjDepth2[vn]--
	}
	s.core1[u] = ^uint32(0)
	s.core2[v] = graph.NoVertex
}

// match is the VF2 recursion over core sizes.
func (s *state) match(depth int) bool {
	if !s.enterNode() {
		return false
	}
	if depth == s.q.NumVertices() {
		s.stats.Embeddings++
		if s.opts.OnMatch != nil && !s.opts.OnMatch(s.core1) {
			s.aborted = true
			return false
		}
		if s.opts.MaxEmbeddings > 0 && s.stats.Embeddings >= s.opts.MaxEmbeddings {
			s.stats.LimitHit = true
			s.aborted = true
			return false
		}
		return true
	}
	u := s.nextQueryVertex()
	if u == graph.NoVertex {
		return true
	}
	useT2 := depth > 0
	for v := 0; v < s.g.NumVertices(); v++ {
		vv := uint32(v)
		if s.core2[v] != graph.NoVertex {
			continue
		}
		if useT2 && s.adjDepth2[v] == 0 {
			continue // candidate pairs come from T2 once the core is non-empty
		}
		if !s.feasible(u, vv) {
			continue
		}
		s.addPair(u, vv)
		cont := s.match(depth + 1)
		s.removePair(u, vv)
		if !cont {
			return false
		}
	}
	return true
}
