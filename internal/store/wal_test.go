package store

import (
	"os"
	"path/filepath"
	"testing"

	"subgraphmatching/internal/graph"
)

func walTestRecords() []walRecord {
	fp1 := graph.Fingerprint{1, 2, 3}
	fp2 := graph.Fingerprint{4, 5, 6}
	return []walRecord{
		{op: walOpRegister, gen: 1, fp: fp1, name: "alpha", snap: "0102.snap"},
		{op: walOpRegister, gen: 2, fp: fp2, name: "beta", snap: "0405.snap"},
		{op: walOpUnregister, gen: 1, name: "alpha"},
		{op: walOpRegister, gen: 3, fp: fp1, name: "alpha", snap: "0102.snap"},
	}
}

func TestWALAppendScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := walTestRecords()
	for _, r := range recs {
		if err := w.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	var got []walRecord
	n, torn, err := scanWAL(path, func(r walRecord) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean log reported torn")
	}
	if n != len(recs) {
		t.Fatalf("scanned %d records, want %d", n, len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := walTestRecords()
	for _, r := range recs[:2] {
		if err := w.append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the third record: write only part of its frame, as a crash
	// mid-append would.
	w.failAfter = 5
	if err := w.append(recs[2]); err == nil {
		t.Fatal("injected failure did not propagate")
	}
	w.close()

	n, off, torn, err := replayWAL(path, func(walRecord) {})
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatal("torn tail not detected")
	}
	if n != 2 {
		t.Fatalf("replayed %d records, want 2", n)
	}
	st, _ := os.Stat(path)
	if st.Size() != off {
		t.Fatalf("file is %d bytes after truncation, want %d", st.Size(), off)
	}

	// The truncated log must accept appends and replay cleanly.
	w2, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.append(recs[3]); err != nil {
		t.Fatal(err)
	}
	w2.close()
	var got []walRecord
	n, torn, err = scanWAL(path, func(r walRecord) { got = append(got, r) })
	if err != nil || torn {
		t.Fatalf("reopened log: n=%d torn=%v err=%v", n, torn, err)
	}
	if n != 3 || got[2] != recs[3] {
		t.Fatalf("after truncate+append: %d records, last %+v", n, got[len(got)-1])
	}
}

func TestWALCorruptMidRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := walTestRecords()
	for _, r := range recs {
		if err := w.append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.close()

	// Flip a payload byte inside the second record: replay keeps the
	// first record and treats everything from the damage on as torn.
	data, _ := os.ReadFile(path)
	frame0 := len(recs[0].encode())
	data[frame0+walFrameSize+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n, torn, err := scanWAL(path, func(walRecord) {})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !torn {
		t.Fatalf("n=%d torn=%v, want 1 record then torn", n, torn)
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range walTestRecords() {
		if err := w.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.reset(); err != nil {
		t.Fatal(err)
	}
	if w.size != 0 || w.records != 0 {
		t.Fatalf("size=%d records=%d after reset", w.size, w.records)
	}
	// O_APPEND means post-reset appends land at the new EOF.
	if err := w.append(walRecord{op: walOpUnregister, gen: 9, name: "x"}); err != nil {
		t.Fatal(err)
	}
	w.close()
	n, torn, err := scanWAL(path, func(walRecord) {})
	if err != nil || torn || n != 1 {
		t.Fatalf("after reset+append: n=%d torn=%v err=%v", n, torn, err)
	}
}
