package filter

import (
	"sort"

	"subgraphmatching/internal/graph"
)

// profiler computes r-hop neighborhood label profiles. Because a
// subgraph isomorphism cannot stretch distances (a vertex within
// distance d of u maps to within distance d of f(u)), the label multiset
// within distance <= d of u must embed into that of v for *every*
// d <= r. The profile therefore keeps cumulative per-distance counts,
// which makes radius r+1 at least as strong a filter as radius r.
type profiler struct {
	radius  int
	visited []int32 // BFS epoch marks, indexed by vertex
	epoch   int32
	queue   []graph.Vertex
	depth   []int32
	// counts[d][l] is the number of vertices with label l within
	// distance <= d.
	counts []map[graph.Label]int32
}

func newProfiler(g *graph.Graph, radius int) *profiler {
	p := &profiler{
		radius:  radius,
		visited: make([]int32, g.NumVertices()),
		counts:  make([]map[graph.Label]int32, radius+1),
	}
	for d := range p.counts {
		p.counts[d] = map[graph.Label]int32{}
	}
	return p
}

// labelProfile holds, per distance 0..r, the sorted cumulative label
// counts.
type labelProfile [][]labelCount

// profile returns the cumulative per-distance label profile of u in g.
func (p *profiler) profile(g *graph.Graph, u graph.Vertex) labelProfile {
	p.collect(g, u)
	out := make(labelProfile, p.radius+1)
	for d := 0; d <= p.radius; d++ {
		ring := make([]labelCount, 0, len(p.counts[d]))
		for l, c := range p.counts[d] {
			ring = append(ring, labelCount{l, c})
		}
		sort.Slice(ring, func(i, j int) bool { return ring[i].label < ring[j].label })
		out[d] = ring
	}
	return out
}

// covers reports whether v's profile covers want at every distance.
func (p *profiler) covers(g *graph.Graph, v graph.Vertex, want labelProfile) bool {
	p.collect(g, v)
	for d := 0; d <= p.radius && d < len(want); d++ {
		for _, lc := range want[d] {
			if p.counts[d][lc.label] < lc.count {
				return false
			}
		}
	}
	return true
}

// collect BFS-walks up to radius hops from u, tallying cumulative label
// counts per distance (each vertex counted once, at its BFS distance and
// every larger distance).
func (p *profiler) collect(g *graph.Graph, u graph.Vertex) {
	p.epoch++
	for d := range p.counts {
		for k := range p.counts[d] {
			delete(p.counts[d], k)
		}
	}
	p.queue = p.queue[:0]
	p.depth = p.depth[:0]
	p.queue = append(p.queue, u)
	p.depth = append(p.depth, 0)
	p.visited[u] = p.epoch
	for head := 0; head < len(p.queue); head++ {
		v := p.queue[head]
		d := p.depth[head]
		p.counts[d][g.Label(v)]++
		if int(d) == p.radius {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if p.visited[w] != p.epoch {
				p.visited[w] = p.epoch
				p.queue = append(p.queue, w)
				p.depth = append(p.depth, d+1)
			}
		}
	}
	// Make the counts cumulative: within <= d includes every smaller
	// ring.
	for d := 1; d <= p.radius; d++ {
		for l, c := range p.counts[d-1] {
			p.counts[d][l] += c
		}
	}
}
