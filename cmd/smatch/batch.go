package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	sm "subgraphmatching"
	"subgraphmatching/internal/service"
)

// runServiceBatch runs the query files listed in listPath (one path per
// line, blank lines and #-comments skipped) as ONE batch through an
// in-process service: items naming the same query under the same config
// share an admission grant and a preprocessing plan, and exact
// duplicates execute once. The summary afterwards shows what the
// grouping saved — the CLI face of smatchd's POST /match/batch.
func runServiceBatch(ctx context.Context, listPath, dataPath, algoName string,
	limit uint64, timeout time.Duration, parallel, workers int) error {
	if dataPath == "" {
		return fmt.Errorf("-d is required")
	}
	algo, err := sm.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	g, err := sm.LoadGraph(dataPath)
	if err != nil {
		return err
	}

	f, err := os.Open(listPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var paths []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		paths = append(paths, line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("%s lists no query files", listPath)
	}

	svc := service.New(service.Config{DefaultTimeLimit: timeout})
	defer svc.Close()
	if _, err := svc.RegisterGraph("data", g, false); err != nil {
		return err
	}

	fmt.Printf("data:    %v\nalgo:    %v\nqueries: %d from %s\n\n", g, algo, len(paths), listPath)
	items := make([]service.Request, len(paths))
	loadErrs := make([]error, len(paths))
	for i, p := range paths {
		q, err := sm.LoadGraph(p)
		if err != nil {
			// A bad path fails its line only; the rest still batch (the
			// service applies the same isolation to invalid queries).
			loadErrs[i] = err
			continue
		}
		items[i] = service.Request{Graph: "data", Query: q, Algorithm: algo,
			MaxEmbeddings: limit, TimeLimit: timeout, Parallel: parallel, Workers: workers}
	}

	began := time.Now()
	results, err := svc.SubmitBatch(ctx, items)
	if err != nil {
		return err
	}
	elapsed := time.Since(began)

	var totalEmb uint64
	errored := 0
	for i := range results {
		if loadErrs[i] != nil {
			fmt.Printf("  query %3d: error: %v\n", i, loadErrs[i])
			errored++
			continue
		}
		if results[i].Err != nil {
			fmt.Printf("  query %3d: error: %v\n", i, results[i].Err)
			errored++
			continue
		}
		resp := results[i].Resp
		from := "built plan"
		if resp.CacheHit {
			from = "shared plan"
		}
		status := "solved"
		if resp.Result.TimedOut {
			status = "UNSOLVED"
		}
		fmt.Printf("  query %3d: %9d embeddings  %12v enumerate  [%s, %s]  %s\n",
			i, resp.Result.Embeddings, resp.Result.EnumTime.Round(time.Microsecond),
			from, status, paths[i])
		totalEmb += resp.Result.Embeddings
	}

	st := svc.Stats()
	fmt.Printf("\nbatch:            %d items in %v (%v per item)\n",
		len(items), elapsed.Round(time.Microsecond),
		(elapsed / time.Duration(len(items))).Round(time.Microsecond))
	fmt.Printf("total embeddings: %d  errors: %d\n", totalEmb, errored)
	fmt.Printf("groups:           %d (plan builds saved by grouping: %d)\n",
		st.Batches.Groups, st.Batches.Items-st.Batches.Groups-uint64(errored))
	fmt.Printf("deduplicated:     %d identical items served from one run\n", st.Batches.Deduped)
	fmt.Printf("plan cache:       %d bytes resident across %d plans\n",
		st.Cache.SizeBytes, st.Cache.Size)
	return nil
}
