package experiments

import (
	"fmt"

	"subgraphmatching/internal/core"
	"subgraphmatching/internal/graph"
	"subgraphmatching/internal/order"
	"subgraphmatching/internal/querygen"
	"subgraphmatching/internal/rmat"
	"subgraphmatching/internal/workload"
)

// The scalability study of Section 5.6 (Figures 17-18) on synthetic
// RMAT graphs. The paper's base configuration is |V| = 1M, d = 16,
// |Sigma| = 16; the stand-in base is scaled down (see DESIGN.md) with the
// same sweeps. GQLfs and RIfs must find all results (no embedding cap)
// within the time limit.

// fig17Base is the scaled-down "sane default" synthetic configuration.
var fig17Base = rmat.Config{NumVertices: 50_000, NumEdges: 400_000, NumLabels: 16, Seed: 900}

type scalPoint struct {
	label string
	cfg   rmat.Config
}

func fig17Sweeps() map[string][]scalPoint {
	varyD := []scalPoint{}
	for _, d := range []int{8, 12, 16, 20} {
		c := fig17Base
		c.NumEdges = c.NumVertices * d / 2
		c.Seed += int64(d)
		varyD = append(varyD, scalPoint{fmt.Sprintf("d=%d", d), c})
	}
	varyL := []scalPoint{}
	for _, l := range []int{8, 12, 16, 20} {
		c := fig17Base
		c.NumLabels = l
		c.Seed += 100 + int64(l)
		varyL = append(varyL, scalPoint{fmt.Sprintf("|Sigma|=%d", l), c})
	}
	varyV := []scalPoint{}
	for _, n := range []int{25_000, 50_000, 100_000, 200_000} {
		c := fig17Base
		c.NumVertices = n
		c.NumEdges = n * 8 // keep d = 16
		c.Seed += 200 + int64(n)
		varyV = append(varyV, scalPoint{fmt.Sprintf("|V|=%dK", n/1000), c})
	}
	return map[string][]scalPoint{"degree": varyD, "labels": varyL, "vertices": varyV}
}

// scalabilityRow runs GQLfs and RIfs over Q16D queries of the graph,
// reporting mean query time, unsolved counts and mean result counts.
func scalabilityRow(env Env, g *graph.Graph, label string, t *workload.Table) error {
	queries, err := querygen.Generate(g, querygen.Config{
		NumVertices: 16, Count: env.PerSet, Density: querygen.Dense, Seed: env.Seed,
	})
	if err != nil {
		// Sparse synthetic graphs may not contain dense 16-vertex
		// subgraphs; report the row as unavailable rather than failing
		// the whole sweep.
		t.AddRow(label, "-", "-", "-", "-", "-")
		return nil
	}
	limits := core.Limits{TimeLimit: env.TimeLimit} // find all results: no cap
	gql := workload.Run("GQLfs", queries, g,
		func(*graph.Graph) core.Config { return core.OrderingStudyConfig(order.GQL, true) }, limits)
	ri := workload.Run("RIfs", queries, g,
		func(*graph.Graph) core.Config { return core.OrderingStudyConfig(order.RI, true) }, limits)
	results := "-"
	// Paper: discard the result count when most queries are unsolved.
	if gql.Unsolved*2 <= gql.Queries {
		results = workload.FmtCount(gql.MeanEmbeddings)
	}
	t.AddRow(label,
		workload.FmtMS(gql.MeanTotal), fmt.Sprintf("%d", gql.Unsolved),
		workload.FmtMS(ri.MeanTotal), fmt.Sprintf("%d", ri.Unsolved),
		results)
	return nil
}

// Fig17 reproduces Figure 17: GQLfs and RIfs on RMAT graphs with degree,
// label count and vertex count varied.
func Fig17(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Figure 17: scalability on synthetic RMAT graphs", "Figure 17")
	sweeps := fig17Sweeps()
	for _, name := range []string{"degree", "labels", "vertices"} {
		t := workload.Table{
			Title:  "vary " + name + " (Q16D, find all results)",
			Header: []string{"config", "GQLfs ms", "GQLfs unsolved", "RIfs ms", "RIfs unsolved", "#results"},
		}
		for _, p := range sweeps[name] {
			g, err := rmat.Generate(p.cfg)
			if err != nil {
				return err
			}
			if err := scalabilityRow(env, g, p.label, &t); err != nil {
				return err
			}
		}
		env.render(&t)
	}
	return nil
}

// fig18Base is the friendster stand-in: the original has 124M vertices
// and 1.8B edges; the stand-in keeps the sweep structure at laptop
// scale.
var fig18Base = rmat.Config{NumVertices: 60_000, NumEdges: 720_000, NumLabels: 64, Seed: 1800}

// Fig18 reproduces Figure 18: the friendster experiment, varying the
// edge density (40/60/80/100% of edges) and the label count.
func Fig18(env Env) error {
	env = env.WithDefaults()
	section(env.Out, "Figure 18: scalability on the friendster stand-in", "Figure 18")
	fmt.Fprintf(env.Out, "stand-in base: |V|=%d |E|=%d (original: 124M vertices, 1.8B edges)\n\n",
		fig18Base.NumVertices, fig18Base.NumEdges)

	td := workload.Table{
		Title:  "vary density (|Sigma|=64, Q16D)",
		Header: []string{"config", "GQLfs ms", "GQLfs unsolved", "RIfs ms", "RIfs unsolved", "#results"},
	}
	for _, pct := range []int{40, 60, 80, 100} {
		c := fig18Base
		c.NumEdges = fig18Base.NumEdges * pct / 100
		c.Seed += int64(pct)
		g, err := rmat.Generate(c)
		if err != nil {
			return err
		}
		if err := scalabilityRow(env, g, fmt.Sprintf("%d%% edges", pct), &td); err != nil {
			return err
		}
	}
	env.render(&td)

	tl := workload.Table{
		Title:  "vary labels (100% edges, Q16D)",
		Header: []string{"config", "GQLfs ms", "GQLfs unsolved", "RIfs ms", "RIfs unsolved", "#results"},
	}
	for _, l := range []int{64, 96, 128, 160} {
		c := fig18Base
		c.NumLabels = l
		c.Seed += 1000 + int64(l)
		g, err := rmat.Generate(c)
		if err != nil {
			return err
		}
		if err := scalabilityRow(env, g, fmt.Sprintf("|Sigma|=%d", l), &tl); err != nil {
			return err
		}
	}
	env.render(&tl)
	return nil
}
