package subgraphmatching

import (
	"subgraphmatching/internal/datasets"
	"subgraphmatching/internal/querygen"
	"subgraphmatching/internal/rmat"
)

// RMATConfig parameterizes a synthetic R-MAT power-law graph (the
// paper's synthetic dataset generator).
type RMATConfig = rmat.Config

// GenerateRMAT produces a labeled power-law graph, deterministic in the
// seed.
func GenerateRMAT(cfg RMATConfig) (*Graph, error) { return rmat.Generate(cfg) }

// QueryDensity classifies generated query sets (dense: average degree
// >= 3; sparse: < 3), matching the paper's query-set taxonomy.
type QueryDensity = querygen.Density

// Query density classes.
const (
	QueryAny    = querygen.Any
	QueryDense  = querygen.Dense
	QuerySparse = querygen.Sparse
)

// QueryConfig parameterizes random-walk query extraction.
type QueryConfig = querygen.Config

// GenerateQueries extracts connected query graphs from g by random walk,
// as the paper generates its query sets. Every generated query has at
// least one embedding in g (it is an induced subgraph of g).
func GenerateQueries(g *Graph, cfg QueryConfig) ([]*Graph, error) {
	return querygen.Generate(g, cfg)
}

// DatasetInfo describes one of the stand-ins for the paper's eight
// real-world datasets (Table 3).
type DatasetInfo = datasets.Info

// DatasetCatalog lists the stand-ins in the paper's order.
func DatasetCatalog() []DatasetInfo { return datasets.Catalog() }

// Dataset generates the named stand-in graph (ye, hu, hp, wn, up, yt,
// db, eu), deterministically.
func Dataset(name string) (*Graph, error) { return datasets.Generate(name) }
