package intersect

import (
	"math/rand"
	"testing"
)

// buildFlat materializes every set into one FlatBlocks arena via the
// two-phase build, the way candspace does it.
func buildFlat(sets [][]uint32) *FlatBlocks {
	counts := make([]int32, len(sets))
	for i, s := range sets {
		counts[i] = int32(CountBlocks(s))
	}
	f := NewFlatBlocks(counts)
	for i, s := range sets {
		f.EncodeSet(i, s)
	}
	return f
}

func TestFlatBlocksRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sets := make([][]uint32, 1+rng.Intn(8))
		for i := range sets {
			n := rng.Intn(300)
			sets[i] = randomSorted(rng, n, n+1+rng.Intn(2000))
		}
		f := buildFlat(sets)
		if f.NumSets() != len(sets) {
			t.Fatalf("NumSets = %d, want %d", f.NumSets(), len(sets))
		}
		totalBlocks, totalElems := 0, 0
		for i, s := range sets {
			v := f.View(i)
			if !v.Valid() {
				t.Fatalf("set %d: view not valid (len %d)", i, len(s))
			}
			got := v.Elements(nil)
			if !equal(got, s) {
				t.Fatalf("set %d: roundtrip %v, want %v", i, got, s)
			}
			if v.Count() != len(s) {
				t.Fatalf("set %d: Count = %d, want %d", i, v.Count(), len(s))
			}
			if bs := NewBlockSet(s); v.NumBlocks() != bs.NumBlocks() {
				t.Fatalf("set %d: %d blocks, boxed layout has %d", i, v.NumBlocks(), bs.NumBlocks())
			}
			totalBlocks += v.NumBlocks()
			totalElems += len(s)
		}
		if f.NumBlocks() != totalBlocks {
			t.Fatalf("NumBlocks = %d, want %d", f.NumBlocks(), totalBlocks)
		}
		if f.CountAll() != totalElems {
			t.Fatalf("CountAll = %d, want %d", f.CountAll(), totalElems)
		}
		if want := (len(sets)+1)*4 + totalBlocks*4 + totalBlocks*8; f.MemoryBytes() != want {
			t.Fatalf("MemoryBytes = %d, want %d", f.MemoryBytes(), want)
		}
	}
}

func TestFlatBlocksEmptySetViewValid(t *testing.T) {
	f := buildFlat([][]uint32{{}, {1, 2, 3}, {}})
	for _, i := range []int{0, 2} {
		v := f.View(i)
		if !v.Valid() {
			t.Errorf("empty set %d: view reports invalid; empty and absent must differ", i)
		}
		if v.NumBlocks() != 0 || v.Count() != 0 {
			t.Errorf("empty set %d: %d blocks, %d elements", i, v.NumBlocks(), v.Count())
		}
	}
	if (BlockView{}).Valid() {
		t.Error("zero BlockView reports valid")
	}
}

func TestIntersectViewsAgreesWithNaive(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Vary density: small max → many shared blocks, large max → sparse.
		max := []int{500, 4000, 100000}[rng.Intn(3)]
		a := randomSorted(rng, rng.Intn(400), max)
		b := randomSorted(rng, rng.Intn(400), max)
		f := buildFlat([][]uint32{a, b})
		av, bv := f.View(0), f.View(1)
		want := naive(a, b)
		if got := IntersectViews(nil, av, bv); !equal(got, want) {
			t.Fatalf("seed %d: IntersectViews = %v, want %v", seed, got, want)
		}
		if got := CountViews(av, bv); got != len(want) {
			t.Fatalf("seed %d: CountViews = %d, want %d", seed, got, len(want))
		}
		if got := IntersectViewWithSorted(nil, av, b); !equal(got, want) {
			t.Fatalf("seed %d: IntersectViewWithSorted = %v, want %v", seed, got, want)
		}
	}
}

// TestIntersectViewsGallopPath forces the block-key galloping branch:
// the short side has GallopThreshold× fewer blocks than the long side.
func TestIntersectViewsGallopPath(t *testing.T) {
	var a, b []uint32
	for i := 0; i < 64; i++ {
		a = append(a, uint32(i)) // one dense block
	}
	for i := 0; i < 64*GallopThreshold*2; i++ {
		b = append(b, uint32(i*64)) // one element per block, many blocks
	}
	f := buildFlat([][]uint32{a, b})
	av, bv := f.View(0), f.View(1)
	if len(bv.Keys)/len(av.Keys) < GallopThreshold {
		t.Fatalf("fixture does not reach the gallop threshold: %d/%d", len(bv.Keys), len(av.Keys))
	}
	want := naive(a, b)
	if len(want) == 0 {
		t.Fatal("fixture intersection is empty; the gallop path is untested")
	}
	if got := IntersectViews(nil, av, bv); !equal(got, want) {
		t.Fatalf("IntersectViews (gallop) = %v, want %v", got, want)
	}
	if got := CountViews(av, bv); got != len(want) {
		t.Fatalf("CountViews (gallop) = %d, want %d", got, len(want))
	}
}

// TestCountGallopPath covers the slice Count's skew switch against the
// merge-count answer.
func TestCountGallopPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	small := randomSorted(rng, 40, 100000)
	large := randomSorted(rng, 40*GallopThreshold*2, 100000)
	want := len(naive(small, large))
	if got := Count(small, large); got != want {
		t.Fatalf("Count(small, large) = %d, want %d", got, want)
	}
	if got := Count(large, small); got != want {
		t.Fatalf("Count(large, small) = %d, want %d", got, want)
	}
}

func equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
