package service

import (
	"context"
	"sync"
	"time"
)

// BatcherConfig sizes a Batcher. Zero values get defaults from
// NewBatcher.
type BatcherConfig struct {
	// MaxBatch flushes a batch as soon as it holds this many items.
	// Default: 32.
	MaxBatch int
	// MaxWait flushes a batch this long after its first item arrived,
	// whatever its size — the latency bound a singleton pays for the
	// chance to coalesce. Default: 2ms.
	MaxWait time.Duration
	// Queue is the arrival buffer between submitters and the collector;
	// a full buffer applies backpressure (Submit blocks on its ctx).
	// Default: 4×MaxBatch.
	Queue int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.MaxBatch
	}
	return c
}

// Batcher coalesces independently submitted requests into SubmitBatch
// calls: a collector goroutine gathers arrivals and flushes on
// size-or-deadline, so concurrent singleton submissions of a hot query
// share one admission grant, one plan lookup, and (for identical
// no-callback requests) one execution. This is how a front end gets
// batching's amortization without its clients ever forming batches.
//
// The trade is explicit: every request pays up to MaxWait of added
// latency for the chance to coalesce. Size it well below the service's
// typical enumeration time.
type Batcher struct {
	s   *Service
	cfg BatcherConfig
	in  chan *batcherItem

	quit     chan struct{} // Close signals the collector
	done     chan struct{} // closed when every flush has delivered
	closeOne sync.Once
	wg       sync.WaitGroup // in-flight flushes
}

// batcherItem pairs a request with its reply slot. The reply channel is
// buffered so a flush never blocks on a submitter that gave up.
type batcherItem struct {
	req  Request
	resp chan BatchResult
}

// NewBatcher starts a batcher over the service. Callers own it: Close
// flushes what is pending and stops the collector.
func (s *Service) NewBatcher(cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		s:    s,
		cfg:  cfg,
		in:   make(chan *batcherItem, cfg.Queue),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go b.collect()
	return b
}

// Submit enqueues one request and waits for its batch to run. The ctx
// is honored while the request is queued (and bounds the admission and
// execution of its batch only through the request's own TimeLimit —
// once flushed, a batch runs under the service's limits, because its
// items arrived with unrelated contexts).
func (b *Batcher) Submit(ctx context.Context, req Request) (*Response, error) {
	item := &batcherItem{req: req, resp: make(chan BatchResult, 1)}
	select {
	case b.in <- item:
	case <-b.done:
		return nil, ErrBatcherClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-item.resp:
		return r.Resp, r.Err
	case <-b.done:
		// The collector exited without flushing this item (it raced the
		// final drain); nothing will ever reply.
		select {
		case r := <-item.resp:
			return r.Resp, r.Err
		default:
			return nil, ErrBatcherClosed
		}
	case <-ctx.Done():
		// The batch may still run the request; the caller has only
		// stopped waiting.
		return nil, ctx.Err()
	}
}

// Close flushes pending items, stops the collector, and waits for
// in-flight flushes to deliver. Safe to call more than once.
func (b *Batcher) Close() {
	b.closeOne.Do(func() { close(b.quit) })
	<-b.done
}

// collect is the batcher's single collector: it gathers arrivals into
// pending and hands full-or-due batches to flush goroutines, so
// collection never stalls behind a slow batch.
func (b *Batcher) collect() {
	var (
		pending []*batcherItem
		timer   *time.Timer
		due     <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, due = nil, nil
		}
		if len(pending) == 0 {
			return
		}
		batch := pending
		pending = nil
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.flush(batch)
		}()
	}
	for {
		select {
		case item := <-b.in:
			pending = append(pending, item)
			if len(pending) == 1 {
				timer = time.NewTimer(b.cfg.MaxWait)
				due = timer.C
			}
			if len(pending) >= b.cfg.MaxBatch {
				flush()
			}
		case <-due:
			timer, due = nil, nil
			flush()
		case <-b.quit:
			// Graceful close: everything already enqueued still runs, as
			// one final batch. done closes only after every flush has
			// delivered, so a submitter that sees done closed and finds
			// its reply slot empty KNOWS its item was never flushed
			// (it raced the final drain) — no lost replies.
			for {
				select {
				case item := <-b.in:
					pending = append(pending, item)
					continue
				default:
				}
				break
			}
			flush()
			b.wg.Wait()
			close(b.done)
			return
		}
	}
}

// flush runs one collected batch and routes each result back to its
// submitter. A batch-level error (service closed) fans out to every
// item.
func (b *Batcher) flush(batch []*batcherItem) {
	reqs := make([]Request, len(batch))
	for i, item := range batch {
		reqs[i] = item.req
	}
	results, err := b.s.SubmitBatch(context.Background(), reqs)
	if err != nil {
		for _, item := range batch {
			item.resp <- BatchResult{Err: err}
		}
		return
	}
	for i, item := range batch {
		item.resp <- results[i]
	}
}
