package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"subgraphmatching/internal/service"
	"subgraphmatching/internal/testutil"
)

// TestMatchKernelParam covers the kernel= front-door parameter: every
// valid policy is accepted and returns identical embeddings, an unknown
// policy maps to 400, and the kernel mix surfaces in the match result,
// the trace, and /stats.
func TestMatchKernelParam(t *testing.T) {
	ts, g := newTestServer(t)
	// Seed 0 at size 5 yields a cyclic query (6 edges) on the test graph:
	// some vertex has two backward neighbors, so the Optimized preset's
	// intersect local actually executes pairwise kernels.
	q := testutil.RandomConnectedQuery(rand.New(rand.NewSource(0)), g, 5)
	qText := graphText(t, q)

	var want uint64
	for i, kern := range []string{"adaptive", "merge", "gallop", "hybrid", "block"} {
		resp, body := do(t, "POST", ts.URL+"/match?graph=main&kernel="+kern, qText)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("kernel=%s: %d %q", kern, resp.StatusCode, body)
		}
		var res matchResult
		if err := json.Unmarshal([]byte(body), &res); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res.Embeddings
		} else if res.Embeddings != want {
			t.Fatalf("kernel=%s: %d embeddings, want %d", kern, res.Embeddings, want)
		}
		if len(res.Kernels) == 0 {
			t.Errorf("kernel=%s: result carries no kernel mix: %s", kern, body)
		}
		for name := range res.Kernels {
			switch name {
			case "merge", "gallop", "block":
			default:
				t.Errorf("kernel=%s: unknown kernel label %q in mix", kern, name)
			}
		}
	}

	resp, body := do(t, "POST", ts.URL+"/match?graph=main&kernel=simd", qText)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("kernel=simd: %d %q, want 400", resp.StatusCode, body)
	}

	// The trace span carries per-kernel attributes on the enumerate span.
	resp, body = do(t, "POST", ts.URL+"/match?graph=main&kernel=adaptive&trace=1", qText)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace run: %d %q", resp.StatusCode, body)
	}
	var res matchResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("trace=1 returned no trace")
	}

	resp, body = do(t, "GET", ts.URL+"/stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st service.Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, n := range st.Kernels {
		total += n
	}
	if total == 0 {
		t.Errorf("service-wide kernel mix empty after intersect requests: %s", body)
	}

	// The Prometheus families agree.
	resp, body = do(t, "GET", ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if total > 0 && !containsKernelFamily(body) {
		t.Errorf("metrics exposition lacks smatch_intersect_kernel_total:\n%s", body)
	}
}

func containsKernelFamily(body string) bool {
	for i := 0; i+30 <= len(body); i++ {
		if body[i:i+30] == "smatch_intersect_kernel_total{" {
			return true
		}
	}
	return false
}
