// Package ullmann implements Ullmann's 1976 subgraph isomorphism
// algorithm, the earliest entry in the paper's Table 1: a candidate
// matrix per query vertex, full refinement to a fix point at every
// search node, and assignment in a static query-vertex order. It is the
// historical baseline every modern algorithm improves on; the refinement
// it repeats per node is exactly the paper's Filtering Rule 3.1 (the
// STEADY condition) applied eagerly during the search.
package ullmann

import (
	"fmt"
	"sync/atomic"
	"time"

	"subgraphmatching/internal/bitset"
	"subgraphmatching/internal/graph"
)

// Options configures a Solve call.
type Options struct {
	// MaxEmbeddings stops the search after this many matches (0 =
	// unlimited).
	MaxEmbeddings uint64
	// TimeLimit bounds the wall-clock search time (0 = unlimited).
	TimeLimit time.Duration
	// OnMatch, when non-nil, receives each embedding (indexed by query
	// vertex; the slice is reused). Returning false aborts the search.
	OnMatch func(mapping []uint32) bool
	// Cancel, when non-nil, is polled periodically; setting it to true
	// stops the search cooperatively (not reported as a timeout).
	Cancel *atomic.Bool
}

// Stats reports the outcome of a Solve call.
type Stats struct {
	Embeddings uint64
	Nodes      uint64
	TimedOut   bool
	LimitHit   bool
	Duration   time.Duration
}

// Solved reports whether the search completed or reached the cap.
func (s *Stats) Solved() bool { return !s.TimedOut }

// Solve finds all subgraph isomorphisms from q to g.
func Solve(q, g *graph.Graph, opts Options) (*Stats, error) {
	if q.NumVertices() == 0 {
		return &Stats{}, nil
	}
	if !q.IsConnected() {
		return nil, fmt.Errorf("ullmann: query graph must be connected")
	}
	s := &solver{q: q, g: g, opts: opts, stats: &Stats{}}
	s.init()
	start := time.Now()
	if opts.TimeLimit > 0 {
		s.deadline = start.Add(opts.TimeLimit)
	}
	if s.refine(s.rows[0]) {
		s.search(0)
	}
	s.stats.Duration = time.Since(start)
	return s.stats, nil
}

type solver struct {
	q, g  *graph.Graph
	opts  Options
	stats *Stats

	order      []graph.Vertex  // query vertices by descending degree (classic heuristic)
	rows       [][]*bitset.Set // candidate matrix per search level
	assignment []uint32

	deadline time.Time
	ticker   int
	aborted  bool
}

func (s *solver) init() {
	nQ, nG := s.q.NumVertices(), s.g.NumVertices()
	// Static order: descending degree, id tie-break.
	s.order = make([]graph.Vertex, nQ)
	for i := range s.order {
		s.order[i] = graph.Vertex(i)
	}
	for i := 1; i < nQ; i++ {
		u := s.order[i]
		j := i - 1
		for j >= 0 && s.q.Degree(s.order[j]) < s.q.Degree(u) {
			s.order[j+1] = s.order[j]
			j--
		}
		s.order[j+1] = u
	}

	s.rows = make([][]*bitset.Set, nQ+1)
	for lvl := range s.rows {
		s.rows[lvl] = make([]*bitset.Set, nQ)
		for u := range s.rows[lvl] {
			s.rows[lvl][u] = bitset.New(nG)
		}
	}
	// Level-0 matrix: label and degree admissibility.
	for u := 0; u < nQ; u++ {
		uu := graph.Vertex(u)
		for _, v := range s.g.VerticesWithLabel(s.q.Label(uu)) {
			if s.g.Degree(v) >= s.q.Degree(uu) {
				s.rows[0][u].Set(v)
			}
		}
	}
	s.assignment = make([]uint32, nQ)
}

// refine iterates Ullmann's condition to a fix point: candidate v of u
// survives only if every neighbor u' of u has a candidate among v's
// neighbors. Returns false if some row empties.
func (s *solver) refine(rows []*bitset.Set) bool {
	for changed := true; changed; {
		changed = false
		for u := 0; u < s.q.NumVertices(); u++ {
			uu := graph.Vertex(u)
			row := rows[u]
			var remove []uint32
			row.ForEach(func(v uint32) bool {
				for _, un := range s.q.Neighbors(uu) {
					supported := false
					for _, vn := range s.g.Neighbors(v) {
						if rows[un].Contains(vn) {
							supported = true
							break
						}
					}
					if !supported {
						remove = append(remove, v)
						return true
					}
				}
				return true
			})
			for _, v := range remove {
				row.Clear(v)
				changed = true
			}
			if !row.Any() {
				return false
			}
		}
	}
	return true
}

func (s *solver) enterNode() bool {
	s.stats.Nodes++
	s.ticker++
	if s.ticker >= 1<<10 {
		s.ticker = 0
		if s.opts.Cancel != nil && s.opts.Cancel.Load() {
			s.aborted = true
			return false
		}
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.stats.TimedOut = true
			s.aborted = true
			return false
		}
	}
	return true
}

// search assigns s.order[depth] from the level-depth matrix, refining
// after every tentative assignment (Ullmann's depth-first search with
// refinement).
func (s *solver) search(depth int) bool {
	if !s.enterNode() {
		return false
	}
	if depth == s.q.NumVertices() {
		s.stats.Embeddings++
		if s.opts.OnMatch != nil && !s.opts.OnMatch(s.assignment) {
			s.aborted = true
			return false
		}
		if s.opts.MaxEmbeddings > 0 && s.stats.Embeddings >= s.opts.MaxEmbeddings {
			s.stats.LimitHit = true
			s.aborted = true
			return false
		}
		return true
	}
	u := s.order[depth]
	cur, next := s.rows[depth], s.rows[depth+1]
	cont := true
	cur[u].ForEach(func(v uint32) bool {
		// Tentatively fix u -> v: copy the matrix, shrink u's row to
		// {v}, remove v everywhere else (injectivity), refine.
		for i := 0; i < s.q.NumVertices(); i++ {
			next[i].CopyFrom(cur[i])
			if i != int(u) {
				next[i].Clear(v)
				if !next[i].Any() {
					return true // some row emptied: try the next v
				}
			}
		}
		next[u].Reset()
		next[u].Set(v)
		if !s.refine(next) {
			return true
		}
		s.assignment[u] = v
		if !s.search(depth + 1) {
			cont = false
			return false
		}
		return true
	})
	return cont
}
